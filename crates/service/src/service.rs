//! The continuous-census service: worker pool, churn applier, ledger.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use census_core::{AdaptiveTimeout, EstimateError, RandomTour, SizeEstimator, Supervised};
use census_graph::{FrozenView, NodeId, Topology};
use census_metrics::{GaugeMetric, HistogramMetric, Metric, NoopRecorder, Recorder, RunCtx, NOOP};
use census_sampling::{CtrwSampler, Sample, Sampler};
use census_sim::attacks::AttackPlan;
use census_sim::faults::FaultPlan;
use census_sim::{DynamicNetwork, MembershipDelta};
use census_walk::frontier::{ctrw_frontier_with, CtrwSpec, FrontierMode};
use census_walk::stream::{stream_seed, StreamDomain};
use census_walk::WalkError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::epoch::{EpochChain, RefreezePolicy};
use crate::query::{Counter, Query, QueryAnswer, QueryOutcome, SubmitError};
use crate::queue::{Job, JobQueue};

/// Tuning knobs of a [`CensusService`].
///
/// Only the seed is mandatory; the defaults give a single worker, a
/// 1024-slot queue, an unbounded per-attempt deadline with no retries,
/// the eager refreeze policy, a fault-free overlay, and an unpaced churn
/// applier.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    seed: u64,
    workers: usize,
    queue_capacity: usize,
    deadline: u64,
    retries: u32,
    policy: RefreezePolicy,
    faults: Option<FaultPlan>,
    attacks: Option<AttackPlan>,
    churn_pause: Duration,
    batch_drain: usize,
    frontier_mode: FrontierMode,
    shards: usize,
    handoff_capacity: usize,
}

impl ServiceConfig {
    /// A default configuration around the service seed — the root of
    /// every query's private RNG stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            workers: 1,
            queue_capacity: 1024,
            deadline: u64::MAX,
            retries: 0,
            policy: RefreezePolicy::eager(),
            faults: None,
            attacks: None,
            churn_pause: Duration::ZERO,
            batch_drain: 1,
            frontier_mode: FrontierMode::default(),
            shards: 1,
            handoff_capacity: 1024,
        }
    }

    /// Worker threads draining the query queue.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a service needs at least one worker");
        self.workers = workers;
        self
    }

    /// Queue slots before submissions bounce with
    /// [`SubmitError::Overloaded`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queue_capacity = capacity;
        self
    }

    /// Per-attempt step budget (walk hops) for every query, routed
    /// through the §5.3.1 supervisor; an attempt exceeding it fails with
    /// a walk timeout.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    #[must_use]
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        assert!(deadline > 0, "deadline must be positive");
        self.deadline = deadline;
        self
    }

    /// Retries after a failed attempt before the query expires.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// When the churn applier re-freezes (see [`RefreezePolicy`]).
    #[must_use]
    pub fn with_policy(mut self, policy: RefreezePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects faults: every query executes through `plan` layered over
    /// its pinned snapshot.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Injects Byzantine adversaries: every query executes through
    /// `plan`'s adversarial wrapper (layered over the fault wrapper when
    /// both are configured), and the plan's queue-flood pressure is
    /// applied before the submission closure runs. An empty plan is
    /// provably inert — every answer stays bit-identical.
    #[must_use]
    pub fn with_attacks(mut self, plan: AttackPlan) -> Self {
        self.attacks = Some(plan);
        self
    }

    /// Sleep between applied membership events, pacing churn so it stays
    /// live while queries run (benchmarks) instead of racing ahead of
    /// them (the zero default).
    #[must_use]
    pub fn with_churn_pause(mut self, pause: Duration) -> Self {
        self.churn_pause = pause;
        self
    }

    /// How many queued jobs a worker drains per dequeue. At the default
    /// of 1 each job is popped, pinned, and executed on its own. Larger
    /// values enable *batch-drain* mode: a worker takes up to
    /// `batch_drain` already-queued jobs at once, pins one epoch for the
    /// whole batch, and coalesces the batch's same-epoch `Query::Sample`
    /// walks into one lock-step CTRW frontier
    /// ([`census_walk::frontier::ctrw_frontier`]). Answers are unchanged
    /// — every query still runs entirely on its private RNG stream — so
    /// the knob trades per-query epoch freshness for memory-level
    /// parallelism on the walk hot path.
    ///
    /// # Panics
    ///
    /// Panics if `batch_drain` is zero.
    #[must_use]
    pub fn with_batch_drain(mut self, batch_drain: usize) -> Self {
        assert!(batch_drain > 0, "batch drain must be positive");
        self.batch_drain = batch_drain;
        self
    }

    /// The execution mode of the coalesced batch-drain frontier (only
    /// consulted when `batch_drain > 1`). The default —
    /// [`FrontierMode::Exact`], fully tuned — keeps the service's answer
    /// contract: every query's answer is a pure function of its private
    /// stream, byte-identical across worker counts and batch widths.
    /// [`FrontierMode::FastStatEq`] buys extra frontier throughput but
    /// makes each coalesced answer depend on its batch's composition
    /// (still deterministic for a fixed submission schedule, still the
    /// same answer *law*); replayable-audit deployments must leave this
    /// at the default.
    #[must_use]
    pub fn with_frontier_mode(mut self, mode: FrontierMode) -> Self {
        self.frontier_mode = mode;
        self
    }

    /// Shards the snapshot is partitioned into — only read by
    /// [`ShardedCensusService`](crate::ShardedCensusService); the
    /// unsharded [`CensusService`] ignores it. Each shard gets its own
    /// worker pool ([`ServiceConfig::with_workers`] workers *per shard*)
    /// and its own entry in the epoch vector.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a sharded service needs at least one shard");
        self.shards = shards;
        self
    }

    /// Cross-shard handoff flights queued before fresh-job admission
    /// pauses ([`ShardedCensusService`](crate::ShardedCensusService)'s
    /// backpressure bound; see the sharded-census section of DESIGN.md).
    /// In-flight handoffs themselves are never refused — only new work
    /// is held back — so the bound throttles without deadlocking.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_handoff_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "handoff capacity must be positive");
        self.handoff_capacity = capacity;
        self
    }

    /// The service seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Configured worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured queue capacity.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Configured per-attempt step budget.
    #[must_use]
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// Configured retry budget.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Configured refreeze policy.
    #[must_use]
    pub fn policy(&self) -> RefreezePolicy {
        self.policy
    }

    /// Configured fault plan, if any.
    #[must_use]
    pub fn faults(&self) -> Option<FaultPlan> {
        self.faults
    }

    /// Configured attack plan, if any.
    #[must_use]
    pub fn attacks(&self) -> Option<AttackPlan> {
        self.attacks
    }

    /// Configured batch-drain width.
    #[must_use]
    pub fn batch_drain(&self) -> usize {
        self.batch_drain
    }

    /// Configured batch-drain frontier execution mode.
    #[must_use]
    pub fn frontier_mode(&self) -> FrontierMode {
        self.frontier_mode
    }

    /// Configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Configured cross-shard handoff bound.
    #[must_use]
    pub fn handoff_capacity(&self) -> usize {
        self.handoff_capacity
    }
}

/// The submission surface handed to the closure of
/// [`CensusService::serve`]; shareable across the closure's own threads
/// (`&self` methods only).
#[derive(Debug)]
pub struct ServiceHandle<'s, Rec: ?Sized = NoopRecorder> {
    queue: &'s JobQueue,
    chain: &'s EpochChain,
    recorder: &'s Rec,
}

impl<Rec: Recorder + ?Sized> ServiceHandle<'_, Rec> {
    /// Submits a query, returning its id — the key into the outcome list
    /// [`CensusService::serve`] returns, and the index of the query's
    /// private RNG stream.
    ///
    /// Ids are allocated in admission order and only to accepted
    /// queries, so accepted ids are contiguous from zero. A full queue
    /// refuses the query with [`SubmitError::Overloaded`] without
    /// consuming an id: backpressure is the caller's to handle — resubmit
    /// later, shed load, or widen the queue — and never a silent drop.
    pub fn submit(&self, query: Query) -> Result<u64, SubmitError> {
        self.recorder.incr(Metric::QueriesSubmitted, 1);
        match self.queue.push(query) {
            Ok((id, depth)) => {
                self.recorder
                    .set_gauge(GaugeMetric::QueueDepth, depth as u64);
                Ok(id)
            }
            Err(e) => {
                self.recorder.incr(Metric::QueriesRejected, 1);
                Err(e)
            }
        }
    }

    /// Queries currently queued (racy by nature; a scheduling hint).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Epoch stamp of the newest published snapshot.
    #[must_use]
    pub fn latest_epoch(&self) -> u64 {
        self.chain.latest_epoch()
    }
}

/// Closes the queue and stops the churn applier when dropped, so worker
/// threads always unblock — even if the submission closure panics.
struct ShutdownGuard<'s> {
    queue: &'s JobQueue,
    stop: &'s AtomicBool,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.queue.close();
    }
}

/// A long-running census engine over one dynamic overlay.
///
/// The service owns the live [`DynamicNetwork`] plus an [`EpochChain`] of
/// frozen CSR snapshots. While [`CensusService::serve`] runs, a worker
/// pool drains the bounded query queue — each worker pins the newest
/// epoch per query and walks it lock-free — and a churn applier consumes
/// a [`MembershipDelta`] stream, re-freezing under the configured
/// [`RefreezePolicy`]. See the "Service layer" section of `DESIGN.md`
/// for the epoch/backpressure/determinism contract.
///
/// # Examples
///
/// ```
/// use census_graph::generators;
/// use census_service::{CensusService, Counter, Query, ServiceConfig};
/// use census_core::RandomTour;
/// use census_sim::{DynamicNetwork, JoinRule};
/// use rand::{SeedableRng, rngs::SmallRng};
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let net = DynamicNetwork::new(
///     generators::balanced(500, 8, &mut rng),
///     JoinRule::Balanced { max_degree: 8 },
/// );
/// let mut service = CensusService::new(net, ServiceConfig::new(42).with_workers(2));
/// let (ids, outcomes) = service.serve(&[], |census| {
///     (0..4)
///         .map(|_| census.submit(Query::Count(Counter::RandomTour(RandomTour::new()))))
///         .collect::<Result<Vec<_>, _>>()
///         .expect("queue has room")
/// });
/// assert_eq!(ids, vec![0, 1, 2, 3]);
/// assert_eq!(outcomes.len(), 4);
/// assert!(outcomes.iter().all(|o| o.result.is_ok()));
/// ```
#[derive(Debug)]
pub struct CensusService {
    net: DynamicNetwork,
    chain: EpochChain,
    config: ServiceConfig,
}

impl CensusService {
    /// Wraps `net`, freezing it as epoch 0 of the snapshot chain.
    #[must_use]
    pub fn new(net: DynamicNetwork, config: ServiceConfig) -> Self {
        let chain = EpochChain::new(net.freeze());
        Self { net, chain, config }
    }

    /// The live overlay.
    #[must_use]
    pub fn network(&self) -> &DynamicNetwork {
        &self.net
    }

    /// The configuration this service runs under.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Pins the newest snapshot (see [`EpochChain::pin`]).
    #[must_use]
    pub fn pin(&self) -> Arc<FrozenView> {
        self.chain.pin()
    }

    /// Epoch stamp of the newest published snapshot.
    #[must_use]
    pub fn latest_epoch(&self) -> u64 {
        self.chain.latest_epoch()
    }

    /// Recovers the live overlay, dropping the snapshot chain.
    #[must_use]
    pub fn into_network(self) -> DynamicNetwork {
        self.net
    }

    /// [`CensusService::serve_rec`] with the no-op recorder.
    pub fn serve<F, O>(&mut self, events: &[MembershipDelta], f: F) -> (O, Vec<QueryOutcome>)
    where
        F: FnOnce(&ServiceHandle<'_, NoopRecorder>) -> O,
    {
        self.serve_rec(events, &NOOP, f)
    }

    /// Runs the service: spawns the worker pool and the churn applier on
    /// scoped threads, hands `f` a [`ServiceHandle`] to submit queries
    /// through, and on return drains the queue gracefully — every
    /// accepted query executes — before joining the pool.
    ///
    /// Returns `f`'s output plus one [`QueryOutcome`] per accepted
    /// query, sorted by id. Each query's RNG stream is derived as
    /// `stream_seed(StreamDomain::ServiceQuery, seed, id)` (the
    /// domain-tagged SplitMix64 schedule of `census_walk::stream`), and
    /// the walk runs entirely on the epoch pinned at dequeue, so an
    /// outcome's `result` is a pure function of `(seed, id, epoch)` — the
    /// worker count, batch-drain width, and thread interleaving affect
    /// throughput and epoch-pinning only, not any answer computed on a
    /// given epoch.
    ///
    /// The churn applier mutates the live overlay from `events` (in
    /// order, paced by the configured pause) and publishes new epochs
    /// under the refreeze policy. An unpaced stream is always applied in
    /// full, so the epoch sequence is a deterministic function of the
    /// event list; a paced stream additionally stops at shutdown. Either
    /// way the applier publishes any unpublished churn before exiting.
    ///
    /// # Panics
    ///
    /// Panics if the event stream empties the overlay.
    pub fn serve_rec<Rec, F, O>(
        &mut self,
        events: &[MembershipDelta],
        recorder: &Rec,
        f: F,
    ) -> (O, Vec<QueryOutcome>)
    where
        Rec: Recorder + Sync + ?Sized,
        F: FnOnce(&ServiceHandle<'_, Rec>) -> O,
    {
        let config = self.config;
        let net = &mut self.net;
        let chain = &self.chain;
        let queue = JobQueue::new(config.queue_capacity);
        let outcomes: Mutex<Vec<QueryOutcome>> = Mutex::new(Vec::new());
        let stop = AtomicBool::new(false);

        let output = thread::scope(|scope| {
            for _ in 0..config.workers {
                let queue = &queue;
                let outcomes = &outcomes;
                let config = &config;
                scope.spawn(move || worker_loop(queue, chain, recorder, outcomes, config));
            }
            if !events.is_empty() {
                let stop = &stop;
                let config = &config;
                scope.spawn(move || {
                    churn_loop(net, events, config, stop, |net| {
                        publish(net, chain, recorder);
                    });
                });
            }
            let guard = ShutdownGuard {
                queue: &queue,
                stop: &stop,
            };
            let handle = ServiceHandle {
                queue: &queue,
                chain,
                recorder,
            };
            // QueueFlood: the adversary's junk submissions land through
            // the same admission path as honest queries — consuming real
            // slots, ids, and worker time — before the caller submits a
            // thing. Bounced floods still show up as rejections, so the
            // submitted/rejected/completed/expired ledger reconciles.
            if let Some(attack) = config.attacks {
                for _ in 0..attack.queue_flood() {
                    let _ = handle.submit(Query::Sample(CtrwSampler::new(1.0)));
                }
            }
            let output = f(&handle);
            // Normal shutdown: stop admitting, let the pool drain, then
            // the scope joins every thread. A panic in `f` takes the same
            // path through the guard's Drop.
            drop(guard);
            output
        });

        let mut results = outcomes.into_inner().expect("outcomes poisoned");
        results.sort_unstable_by_key(|o| o.id);
        (output, results)
    }

    /// [`CensusService::serve_driven_rec`] with the no-op recorder.
    pub fn serve_driven<D, F, O>(&mut self, steps: u64, driver: D, f: F) -> (O, Vec<QueryOutcome>)
    where
        D: FnMut(&mut DynamicNetwork) -> u64 + Send,
        F: FnOnce(&ServiceHandle<'_, NoopRecorder>) -> O,
    {
        self.serve_driven_rec(steps, &NOOP, driver, f)
    }

    /// Runs the service over a *protocol-driven* overlay: like
    /// [`CensusService::serve_rec`], but instead of consuming a
    /// [`MembershipDelta`] stream, the background thread calls `driver`
    /// once per step with mutable access to the live overlay. The driver
    /// returns how many membership/edge mutations it applied; that count
    /// feeds the configured [`RefreezePolicy`] exactly as a churn event's
    /// node delta would, so the service refreezes over an overlay that is
    /// still wiring itself — the `census-overlay` engine is the intended
    /// driver, one protocol tick per step.
    ///
    /// Query determinism is unchanged (each answer is a pure function of
    /// `(seed, id, pinned epoch)`); what the driver changes is which
    /// epochs exist to pin. Pacing and the final flush mirror the churn
    /// applier: an unpaced driver always runs all `steps`, a paced one
    /// checks for shutdown between steps, and any unpublished mutations
    /// are published before the thread exits.
    ///
    /// # Panics
    ///
    /// Panics if the driver empties the overlay.
    pub fn serve_driven_rec<Rec, D, F, O>(
        &mut self,
        steps: u64,
        recorder: &Rec,
        driver: D,
        f: F,
    ) -> (O, Vec<QueryOutcome>)
    where
        Rec: Recorder + Sync + ?Sized,
        D: FnMut(&mut DynamicNetwork) -> u64 + Send,
        F: FnOnce(&ServiceHandle<'_, Rec>) -> O,
    {
        let config = self.config;
        let net = &mut self.net;
        let chain = &self.chain;
        let queue = JobQueue::new(config.queue_capacity);
        let outcomes: Mutex<Vec<QueryOutcome>> = Mutex::new(Vec::new());
        let stop = AtomicBool::new(false);

        let output = thread::scope(|scope| {
            for _ in 0..config.workers {
                let queue = &queue;
                let outcomes = &outcomes;
                let config = &config;
                scope.spawn(move || worker_loop(queue, chain, recorder, outcomes, config));
            }
            if steps > 0 {
                let stop = &stop;
                let config = &config;
                scope.spawn(move || {
                    driven_loop(net, steps, config, stop, driver, |net| {
                        publish(net, chain, recorder);
                    });
                });
            }
            let guard = ShutdownGuard {
                queue: &queue,
                stop: &stop,
            };
            let handle = ServiceHandle {
                queue: &queue,
                chain,
                recorder,
            };
            if let Some(attack) = config.attacks {
                for _ in 0..attack.queue_flood() {
                    let _ = handle.submit(Query::Sample(CtrwSampler::new(1.0)));
                }
            }
            let output = f(&handle);
            drop(guard);
            output
        });

        let mut results = outcomes.into_inner().expect("outcomes poisoned");
        results.sort_unstable_by_key(|o| o.id);
        (output, results)
    }
}

/// Applies the membership stream to the live overlay, re-freezing under
/// the policy. Runs on its own scoped thread.
///
/// `publish` turns the churned overlay into a new epoch — the unsharded
/// service freezes straight into its [`EpochChain`], the sharded service
/// partitions the freeze and diffs it into its per-shard epoch vector —
/// so both services share one churn applier with identical pacing,
/// policy, and flush semantics.
pub(crate) fn churn_loop<P: Fn(&DynamicNetwork)>(
    net: &mut DynamicNetwork,
    events: &[MembershipDelta],
    config: &ServiceConfig,
    stop: &AtomicBool,
    publish: P,
) {
    // The churn stream lives in its own tagged domain, so it can never
    // collide with a query stream (or a replica / frontier stream)
    // sharing the same base seed.
    let mut rng = SmallRng::seed_from_u64(stream_seed(StreamDomain::Churn, config.seed, 0));
    let mut pending_delta = 0u64;
    let mut staleness = 0u64;
    for event in events {
        if event.delta >= 0 {
            net.churn(event.delta.unsigned_abs() as usize, 0, &mut rng);
        } else {
            net.churn(0, event.delta.unsigned_abs() as usize, &mut rng);
        }
        assert!(net.size() > 0, "membership stream emptied the overlay");
        pending_delta += event.delta.unsigned_abs();
        staleness += 1;
        if config.policy.is_due(pending_delta, staleness) {
            publish(net);
            pending_delta = 0;
            staleness = 0;
        }
        // An unpaced stream always applies fully (so a given event list
        // deterministically yields the same epoch sequence); a paced one
        // checks for shutdown between events instead of sleeping past it.
        if !config.churn_pause.is_zero() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            thread::sleep(config.churn_pause);
        }
    }
    // End fresh: any churn applied but not yet published still reaches
    // the chain before the applier exits.
    if pending_delta > 0 {
        publish(net);
    }
}

/// Advances a protocol driver over the live overlay, re-freezing under
/// the policy. The driven twin of [`churn_loop`]: per-step mutation
/// counts play the role of membership deltas, and pacing, shutdown, and
/// the final flush behave identically.
fn driven_loop<D, P>(
    net: &mut DynamicNetwork,
    steps: u64,
    config: &ServiceConfig,
    stop: &AtomicBool,
    mut driver: D,
    publish: P,
) where
    D: FnMut(&mut DynamicNetwork) -> u64,
    P: Fn(&DynamicNetwork),
{
    let mut pending_delta = 0u64;
    let mut staleness = 0u64;
    for _ in 0..steps {
        let mutated = driver(net);
        assert!(net.size() > 0, "the driver emptied the overlay");
        pending_delta += mutated;
        staleness += 1;
        if config.policy.is_due(pending_delta, staleness) {
            publish(net);
            pending_delta = 0;
            staleness = 0;
        }
        if !config.churn_pause.is_zero() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            thread::sleep(config.churn_pause);
        }
    }
    if pending_delta > 0 {
        publish(net);
    }
}

fn publish<Rec: Recorder + ?Sized>(net: &DynamicNetwork, chain: &EpochChain, recorder: &Rec) {
    let view = net.freeze();
    recorder.incr(Metric::Refreezes, 1);
    recorder.set_gauge(GaugeMetric::SnapshotEpoch, view.epoch());
    chain.publish(view);
}

/// Per-job state while a drained batch executes: the job, its private
/// RNG stream, and its eventual result (filled by the coalesced frontier
/// pass or the serial fallback).
struct BatchSlot {
    job: Job,
    rng: SmallRng,
    result: Option<Result<QueryAnswer, EstimateError>>,
}

/// Drains the queue until it closes and empties. Runs on each worker
/// thread of the pool.
///
/// At `batch_drain = 1` every job is popped, pinned, and executed on its
/// own (the historical path). Wider drains pin one epoch per batch and
/// coalesce the batch's `Query::Sample` walks into one CTRW frontier;
/// each job still draws exclusively from its private tagged stream, so
/// its result stays the same pure function of `(seed, id, epoch)`.
fn worker_loop<Rec: Recorder + ?Sized>(
    queue: &JobQueue,
    chain: &EpochChain,
    recorder: &Rec,
    outcomes: &Mutex<Vec<QueryOutcome>>,
    config: &ServiceConfig,
) {
    loop {
        let popped = if config.batch_drain == 1 {
            queue.pop().map(|(job, depth)| (vec![job], depth))
        } else {
            queue.pop_batch(config.batch_drain)
        };
        let Some((jobs, depth)) = popped else { break };
        recorder.set_gauge(GaugeMetric::QueueDepth, depth as u64);
        let started = Instant::now();
        let pinned = chain.pin();
        recorder.set_gauge(GaugeMetric::EpochLag, chain.lag_of(&pinned));

        // The query's whole randomness — initiator draw included — comes
        // from its private stream, so the result depends only on
        // (seed, id, pinned epoch).
        let mut slots: Vec<BatchSlot> = jobs
            .into_iter()
            .map(|job| BatchSlot {
                rng: SmallRng::seed_from_u64(stream_seed(
                    StreamDomain::ServiceQuery,
                    config.seed,
                    job.id,
                )),
                job,
                result: None,
            })
            .collect();

        // Batch mode: run the Sample queries' first attempts as one
        // lock-step frontier over the shared pinned epoch. The attack
        // wrapper sits outermost (adversaries act on the overlay the
        // faults left standing), one wrapper per lane like the serial
        // path, and each lane's attack footprint is absorbed into the
        // recorder when the lane finishes.
        if slots.len() > 1 {
            match (config.faults, config.attacks) {
                (None, None) => {
                    coalesce_samples(&mut slots, &pinned, || &*pinned, |_| {}, recorder, config);
                }
                (Some(plan), None) => {
                    coalesce_samples(
                        &mut slots,
                        &pinned,
                        || plan.apply(&*pinned),
                        |_| {},
                        recorder,
                        config,
                    );
                }
                (None, Some(attack)) => {
                    coalesce_samples(
                        &mut slots,
                        &pinned,
                        || attack.apply(&*pinned),
                        |t| t.attack_snapshot().charge(recorder),
                        recorder,
                        config,
                    );
                }
                (Some(plan), Some(attack)) => {
                    coalesce_samples(
                        &mut slots,
                        &pinned,
                        || attack.apply(plan.apply(&*pinned)),
                        |t| t.attack_snapshot().charge(recorder),
                        recorder,
                        config,
                    );
                }
            }
        }

        for slot in &mut slots {
            let result = match slot.result.take() {
                Some(result) => result,
                None => match pinned.random_node(&mut slot.rng) {
                    None => Err(EstimateError::Degenerate(
                        "snapshot holds no live peers".to_owned(),
                    )),
                    Some(initiator) => match (config.faults, config.attacks) {
                        (None, None) => {
                            let mut ctx = RunCtx::with_recorder(&*pinned, &mut slot.rng, recorder);
                            run_query(&slot.job.query, &mut ctx, initiator, config)
                        }
                        (Some(plan), None) => {
                            let faulty = plan.apply(&*pinned);
                            let mut ctx = RunCtx::with_recorder(&faulty, &mut slot.rng, recorder);
                            run_query(&slot.job.query, &mut ctx, initiator, config)
                        }
                        (None, Some(attack)) => {
                            let adversarial = attack.apply(&*pinned);
                            let mut ctx =
                                RunCtx::with_recorder(&adversarial, &mut slot.rng, recorder);
                            let result = run_query(&slot.job.query, &mut ctx, initiator, config);
                            adversarial.attack_snapshot().charge(recorder);
                            result
                        }
                        (Some(plan), Some(attack)) => {
                            let adversarial = attack.apply(plan.apply(&*pinned));
                            let mut ctx =
                                RunCtx::with_recorder(&adversarial, &mut slot.rng, recorder);
                            let result = run_query(&slot.job.query, &mut ctx, initiator, config);
                            adversarial.attack_snapshot().charge(recorder);
                            result
                        }
                    },
                },
            };

            match &result {
                Ok(_) => recorder.incr(Metric::QueriesCompleted, 1),
                Err(_) => recorder.incr(Metric::QueriesExpired, 1),
            }
            recorder.observe(
                HistogramMetric::QueryLatency,
                started.elapsed().as_secs_f64() * 1e6,
            );
            outcomes
                .lock()
                .expect("outcomes poisoned")
                .push(QueryOutcome {
                    id: slot.job.id,
                    query: slot.job.query,
                    epoch: pinned.epoch(),
                    result,
                });
        }
    }
}

/// Runs the first attempt of every `Query::Sample` job in `slots` as one
/// CTRW frontier, then finishes each job — success bookkeeping or serial
/// retries — exactly as the serial `run_query` path would have.
///
/// Each lane owns its topology handle (`make_topology` is called once per
/// job, mirroring the serial path's one fault wrapper per job) and
/// borrows its slot's private RNG, so per-job results are bit-identical
/// to serial execution; only memory access patterns change. That
/// guarantee holds for the default [`FrontierMode::Exact`] under any
/// kernel tuning; [`ServiceConfig::with_frontier_mode`] can trade it for
/// [`FrontierMode::FastStatEq`] throughput, making coalesced answers
/// batch-composition-dependent (same law, different bits). Slots the
/// pass fills have `result = Some(..)`; other queries are left untouched
/// for the serial fallback.
fn coalesce_samples<T, F, A, Rec>(
    slots: &mut [BatchSlot],
    pinned: &FrozenView,
    make_topology: F,
    absorb: A,
    recorder: &Rec,
    config: &ServiceConfig,
) where
    T: Topology,
    F: Fn() -> T,
    A: Fn(&T),
    Rec: Recorder + ?Sized,
{
    // Draw each Sample job's initiator from its private stream — the
    // exact point the serial path draws it — and mark degenerate
    // snapshots without launching anything.
    let mut lanes: Vec<(usize, CtrwSampler, NodeId)> = Vec::new();
    for (i, slot) in slots.iter_mut().enumerate() {
        let Query::Sample(sampler) = slot.job.query else {
            continue;
        };
        match pinned.random_node(&mut slot.rng) {
            Some(initiator) => lanes.push((i, sampler, initiator)),
            None => {
                slot.result = Some(Err(EstimateError::Degenerate(
                    "snapshot holds no live peers".to_owned(),
                )));
            }
        }
    }
    if lanes.is_empty() {
        return;
    }

    // Build one spec per lane, borrowing each slot's RNG disjointly.
    let mut specs: Vec<CtrwSpec<T, &mut SmallRng>> = Vec::with_capacity(lanes.len());
    let mut lane_iter = lanes.iter();
    let mut next = lane_iter.next();
    for (i, slot) in slots.iter_mut().enumerate() {
        let Some(&(lane_slot, sampler, initiator)) = next else {
            break;
        };
        if lane_slot != i {
            continue;
        }
        specs.push(CtrwSpec {
            topology: make_topology(),
            rng: &mut slot.rng,
            start: initiator,
            timer: sampler.timer(),
            sojourn: sampler.sojourn(),
        });
        next = lane_iter.next();
    }

    let fates = ctrw_frontier_with(&mut specs, config.frontier_mode, recorder);

    // Finish each lane: charge the walk's true traffic like the serial
    // engine, then either book the sample or continue with serial
    // retries on the job's own wrapper and RNG. Answers are staged in a
    // side vector because the remaining specs still borrow the slots'
    // RNGs until the iterator is exhausted.
    let mut answers: Vec<(usize, Result<QueryAnswer, EstimateError>)> =
        Vec::with_capacity(lanes.len());
    for ((spec, fate), &(lane_slot, sampler, initiator)) in specs.into_iter().zip(fates).zip(&lanes)
    {
        recorder.incr(Metric::CtrwHops, fate.hops);
        recorder.incr(Metric::SojournDraws, fate.draws);
        let first = match fate.result {
            Ok(out) => {
                recorder.observe(HistogramMetric::CtrwVirtualTime, sampler.timer());
                recorder.incr(Metric::SamplesDrawn, 1);
                recorder.observe(HistogramMetric::SampleCost, out.hops as f64);
                Ok(Sample {
                    node: out.node,
                    hops: out.hops,
                })
            }
            Err(e) => Err(e),
        };
        let answer = finish_sample(
            first,
            sampler,
            &spec.topology,
            spec.rng,
            initiator,
            recorder,
            config,
        );
        absorb(&spec.topology);
        answers.push((lane_slot, answer));
    }
    for (lane_slot, answer) in answers {
        slots[lane_slot].result = Some(answer);
    }
}

/// Completes one coalesced Sample job from its frontier first attempt:
/// the retry schedule, error wrapping, and metric charging of the serial
/// `run_query` Sample arm, continued on the job's own RNG position.
fn finish_sample<T, Rec>(
    first: Result<Sample, WalkError>,
    sampler: CtrwSampler,
    topology: &T,
    rng: &mut SmallRng,
    initiator: NodeId,
    recorder: &Rec,
    config: &ServiceConfig,
) -> Result<QueryAnswer, EstimateError>
where
    T: Topology,
    Rec: Recorder + ?Sized,
{
    let mut attempt = 0u32;
    let mut outcome = first;
    loop {
        match outcome {
            Ok(sample) => return Ok(QueryAnswer::Sample(sample)),
            Err(e) => {
                if attempt >= config.retries {
                    return Err(EstimateError::Walk(e));
                }
                recorder.incr(Metric::WalkRetries, 1);
                attempt += 1;
                let mut ctx = RunCtx::with_recorder(topology, &mut *rng, recorder);
                outcome = sampler.sample_ctx(&mut ctx, initiator);
            }
        }
    }
}

/// Executes one query on the pinned (possibly fault-wrapped) topology.
/// Shared with the sharded service, whose Count/Aggregate queries run
/// whole on the initiator's home shard through this same path.
pub(crate) fn run_query<T, R, Rec>(
    query: &Query,
    ctx: &mut RunCtx<'_, T, R, Rec>,
    initiator: NodeId,
    config: &ServiceConfig,
) -> Result<QueryAnswer, EstimateError>
where
    T: Topology + ?Sized,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    // A frozen timeout tracker: the warm-up is never satisfied, so every
    // attempt's step budget is exactly the configured deadline (backoff
    // 1.0 disables escalation) — per-query deadlines riding the §5.3.1
    // supervisor unchanged.
    let deadline = AdaptiveTimeout::new(config.deadline, 1.0).with_warmup(u64::MAX);
    match *query {
        Query::Count(Counter::RandomTour(tour)) => Supervised::new(tour)
            .with_retries(config.retries)
            .with_backoff(1.0)
            .with_timeout(deadline)
            .estimate_with(ctx, initiator)
            .map(QueryAnswer::Count),
        Query::Count(Counter::SampleCollide(sc)) => Supervised::new(sc)
            .with_retries(config.retries)
            .with_backoff(1.0)
            .with_timeout(deadline)
            .estimate_with(ctx, initiator)
            .map(QueryAnswer::Count),
        // CTRW walks are bounded by their virtual-time timer, not a step
        // budget; one draw per attempt, retried like the supervisor.
        Query::Sample(sampler) => {
            let mut last = None;
            for attempt in 0..=config.retries {
                match sampler.sample_ctx(ctx, initiator) {
                    Ok(sample) => return Ok(QueryAnswer::Sample(sample)),
                    Err(e) => {
                        if attempt < config.retries {
                            ctx.on_event(Metric::WalkRetries, 1);
                        }
                        last = Some(e);
                    }
                }
            }
            Err(EstimateError::Walk(last.expect("at least one attempt ran")))
        }
        Query::Aggregate(f) => {
            let tour = RandomTour::with_timeout(config.deadline);
            let mut last = None;
            for attempt in 0..=config.retries {
                match tour.estimate_sum_with(ctx, initiator, f) {
                    Ok(estimate) => return Ok(QueryAnswer::Aggregate(estimate)),
                    Err(e @ EstimateError::Degenerate(_)) => return Err(e),
                    Err(e) => {
                        if attempt < config.retries {
                            ctx.on_event(Metric::WalkRetries, 1);
                        }
                        last = Some(e);
                    }
                }
            }
            Err(last.expect("at least one attempt ran"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_core::SampleCollide;
    use census_graph::generators;
    use census_metrics::Registry;
    use census_sampling::CtrwSampler;
    use census_sim::{JoinRule, Scenario};

    fn service(n: usize, seed: u64, config: ServiceConfig) -> CensusService {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = DynamicNetwork::new(
            generators::balanced(n, 8, &mut rng),
            JoinRule::Balanced { max_degree: 8 },
        );
        CensusService::new(net, config)
    }

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::Count(Counter::RandomTour(RandomTour::new())),
            Query::Count(Counter::SampleCollide(SampleCollide::new(
                CtrwSampler::new(5.0),
                3,
            ))),
            Query::Sample(CtrwSampler::new(5.0)),
            Query::Aggregate(|_| 1.0),
        ]
    }

    #[test]
    fn mixed_load_completes_with_reconciled_ledger() {
        let mut svc = service(300, 1, ServiceConfig::new(17).with_workers(2));
        let reg = Registry::new();
        let (accepted, outcomes) = svc.serve_rec(&[], &reg, |census| {
            let mut accepted = 0u64;
            for q in mixed_queries().into_iter().cycle().take(12) {
                if census.submit(q).is_ok() {
                    accepted += 1;
                }
            }
            accepted
        });
        assert_eq!(accepted, 12);
        assert_eq!(outcomes.len(), 12);
        assert!(outcomes.iter().all(|o| o.epoch == 0));
        assert_eq!(reg.counter(Metric::QueriesSubmitted), 12);
        assert_eq!(reg.counter(Metric::QueriesRejected), 0);
        assert_eq!(
            reg.counter(Metric::QueriesCompleted) + reg.counter(Metric::QueriesExpired),
            12
        );
        assert_eq!(reg.histogram_count(HistogramMetric::QueryLatency), 12);
        // Fault-free, deadline-free queries on a connected overlay all
        // complete.
        assert_eq!(reg.counter(Metric::QueriesCompleted), 12);
        // A size estimate answers near the truth on this small overlay.
        let count = outcomes
            .iter()
            .find_map(|o| match &o.result {
                Ok(QueryAnswer::Count(e)) => Some(e.value),
                _ => None,
            })
            .expect("a count query completed");
        assert!(count > 0.0);
    }

    #[test]
    fn overload_rejects_without_losing_accepted_queries() {
        // One worker, a tiny queue, and a burst bigger than both.
        let config = ServiceConfig::new(3).with_workers(1).with_queue_capacity(2);
        let mut svc = service(200, 2, config);
        let reg = Registry::new();
        let ((), outcomes) = svc.serve_rec(&[], &reg, |census| {
            let mut accepted = Vec::new();
            let mut rejected = 0u64;
            // Submit a large burst as fast as possible; the 2-slot queue
            // must bounce some (the worker cannot keep up with all 64
            // instantaneous submissions) and lose none.
            for q in mixed_queries().into_iter().cycle().take(64) {
                match census.submit(q) {
                    Ok(id) => accepted.push(id),
                    Err(SubmitError::Overloaded) => rejected += 1,
                }
            }
            assert_eq!(accepted.len() as u64 + rejected, 64);
            // Accepted ids are contiguous from zero: rejections burn no id.
            assert_eq!(accepted, (0..accepted.len() as u64).collect::<Vec<_>>());
        });
        let submitted = reg.counter(Metric::QueriesSubmitted);
        let rejected = reg.counter(Metric::QueriesRejected);
        let completed = reg.counter(Metric::QueriesCompleted);
        let expired = reg.counter(Metric::QueriesExpired);
        assert_eq!(submitted, 64);
        assert_eq!(outcomes.len() as u64, submitted - rejected);
        assert_eq!(completed + expired, submitted - rejected);
    }

    #[test]
    fn churn_publishes_epochs_and_queries_still_answer() {
        let config = ServiceConfig::new(11)
            .with_workers(2)
            .with_policy(RefreezePolicy::eager());
        let mut svc = service(400, 4, config);
        assert_eq!(svc.latest_epoch(), 0);
        let events = Scenario::new().remove_gradually(0, 10, 100).events(10);
        assert_eq!(events.len(), 10);
        let reg = Registry::new();
        let ((), outcomes) = svc.serve_rec(&events, &reg, |census| {
            for q in mixed_queries() {
                census.submit(q).expect("queue has room");
            }
        });
        // Eager policy: one epoch per event, all published by exit.
        assert_eq!(svc.latest_epoch(), 10);
        assert_eq!(reg.counter(Metric::Refreezes), 10);
        assert_eq!(svc.network().size(), 300);
        assert_eq!(svc.pin().num_nodes(), 300);
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(o.epoch <= 10, "epoch {} out of range", o.epoch);
        }
    }

    #[test]
    fn lazy_policy_amortises_refreezes() {
        let config = ServiceConfig::new(5).with_policy(RefreezePolicy::new(40, u64::MAX));
        let mut svc = service(400, 6, config);
        // 10 events of 10 departures each: the 40-delta threshold fires
        // every 4th event, plus the final flush for the trailing 20.
        let events = Scenario::new().remove_gradually(0, 10, 100).events(10);
        let reg = Registry::new();
        let ((), _) = svc.serve_rec(&events, &reg, |_| {});
        assert_eq!(reg.counter(Metric::Refreezes), 3);
        assert_eq!(svc.latest_epoch(), 3);
        // The final flush still leaves the chain fresh.
        assert_eq!(svc.pin().num_nodes(), svc.network().size());
    }

    #[test]
    fn default_attack_plan_is_inert_for_the_service() {
        use census_sim::attacks::AttackPlan;
        let config = ServiceConfig::new(17).with_workers(2);
        let mut plain = service(300, 1, config);
        let ((), expected) = plain.serve(&[], |census| {
            for q in mixed_queries().into_iter().cycle().take(12) {
                census.submit(q).expect("queue has room");
            }
        });
        // Same seed, same queries, the attack layer threaded but empty:
        // every outcome must stay bit-identical.
        let mut attacked = service(300, 1, config.with_attacks(AttackPlan::default()));
        let reg = Registry::new();
        let ((), outcomes) = attacked.serve_rec(&[], &reg, |census| {
            for q in mixed_queries().into_iter().cycle().take(12) {
                census.submit(q).expect("queue has room");
            }
        });
        assert_eq!(outcomes, expected);
        assert_eq!(reg.counter(Metric::ByzantineEncounters), 0);
        assert_eq!(reg.counter(Metric::SwallowedWalks), 0);
        assert_eq!(reg.counter(Metric::ForgedCollisions), 0);
    }

    #[test]
    fn default_attack_plan_is_inert_in_batch_drain_mode() {
        use census_sim::attacks::AttackPlan;
        let config = ServiceConfig::new(19).with_workers(1).with_batch_drain(8);
        let mut plain = service(300, 1, config);
        let ((), expected) = plain.serve(&[], |census| {
            for _ in 0..8 {
                census
                    .submit(Query::Sample(CtrwSampler::new(6.0)))
                    .expect("queue has room");
            }
        });
        let mut attacked = service(300, 1, config.with_attacks(AttackPlan::default()));
        let ((), outcomes) = attacked.serve(&[], |census| {
            for _ in 0..8 {
                census
                    .submit(Query::Sample(CtrwSampler::new(6.0)))
                    .expect("queue has room");
            }
        });
        assert_eq!(outcomes, expected, "the coalesced frontier path diverged");
    }

    #[test]
    fn queue_flood_consumes_slots_and_reconciles() {
        use census_sim::attacks::AttackPlan;
        // A 2-slot queue floods with 32 junk queries before the honest
        // caller gets a word in: some flood submissions must bounce, and
        // the ledger still reconciles with flood traffic included.
        let plan = AttackPlan::default().with_queue_flood(32);
        let config = ServiceConfig::new(29)
            .with_workers(1)
            .with_queue_capacity(2);
        let mut svc = service(200, 3, config.with_attacks(plan));
        let reg = Registry::new();
        let ((), outcomes) = svc.serve_rec(&[], &reg, |census| {
            for q in mixed_queries() {
                let _ = census.submit(q);
            }
        });
        let submitted = reg.counter(Metric::QueriesSubmitted);
        let rejected = reg.counter(Metric::QueriesRejected);
        assert_eq!(submitted, 32 + 4, "flood and honest submissions both count");
        assert!(rejected > 0, "a 32-query flood must overwhelm 2 slots");
        assert_eq!(outcomes.len() as u64, submitted - rejected);
        assert_eq!(
            reg.counter(Metric::QueriesCompleted) + reg.counter(Metric::QueriesExpired),
            submitted - rejected
        );
    }

    #[test]
    fn swallowing_adversaries_expire_queries_but_reconcile() {
        use census_sim::attacks::AttackPlan;
        // 30% of peers swallow every traversing walk: long CTRW draws
        // cannot all dodge them, so some queries expire — and the attack
        // counters absorbed from the per-query wrappers show why.
        let plan = AttackPlan::default()
            .with_byzantine(0.3, 99)
            .with_walk_swallow(1.0);
        let config = ServiceConfig::new(37)
            .with_workers(2)
            .with_retries(1)
            .with_attacks(plan);
        let mut svc = service(200, 8, config);
        let reg = Registry::new();
        let ((), outcomes) = svc.serve_rec(&[], &reg, |census| {
            for _ in 0..8 {
                census
                    .submit(Query::Sample(CtrwSampler::new(8.0)))
                    .expect("queue has room");
            }
        });
        assert_eq!(outcomes.len(), 8);
        assert_eq!(
            reg.counter(Metric::QueriesCompleted) + reg.counter(Metric::QueriesExpired),
            8
        );
        assert!(reg.counter(Metric::QueriesExpired) > 0);
        assert!(reg.counter(Metric::SwallowedWalks) > 0);
        assert!(
            reg.counter(Metric::ByzantineEncounters) >= reg.counter(Metric::SwallowedWalks),
            "every swallow is an encounter"
        );
    }

    #[test]
    fn driven_loop_publishes_epochs_from_driver_mutations() {
        // A protocol driver stands in for the churn applier: each step
        // mutates the live overlay directly and reports its mutation
        // count, and the eager policy turns every step into an epoch.
        let config = ServiceConfig::new(31)
            .with_workers(1)
            .with_policy(RefreezePolicy::eager());
        let mut svc = service(200, 9, config);
        let reg = Registry::new();
        let mut drng = SmallRng::seed_from_u64(99);
        let ((), outcomes) = svc.serve_driven_rec(
            5,
            &reg,
            |net| {
                net.churn(3, 1, &mut drng);
                4
            },
            |census| {
                for q in mixed_queries() {
                    census.submit(q).expect("queue has room");
                }
            },
        );
        assert_eq!(svc.latest_epoch(), 5);
        assert_eq!(reg.counter(Metric::Refreezes), 5);
        assert_eq!(svc.network().size(), 200 + 5 * 2);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.epoch <= 5));
    }

    #[test]
    fn faulty_queries_expire_but_reconcile() {
        // Total message loss with no retransmission kills every walk.
        let plan = FaultPlan::new().with_message_loss(1.0, 9);
        let config = ServiceConfig::new(23)
            .with_workers(2)
            .with_faults(plan)
            .with_retries(2);
        let mut svc = service(200, 8, config);
        let reg = Registry::new();
        let ((), outcomes) = svc.serve_rec(&[], &reg, |census| {
            for _ in 0..6 {
                census
                    .submit(Query::Count(Counter::RandomTour(RandomTour::new())))
                    .expect("queue has room");
            }
        });
        assert_eq!(outcomes.len(), 6);
        assert_eq!(reg.counter(Metric::QueriesCompleted), 0);
        assert_eq!(reg.counter(Metric::QueriesExpired), 6);
        assert!(outcomes.iter().all(|o| o.result.is_err()));
    }
}

//! Deterministic query arrival processes for trace-style workloads.
//!
//! Benchmarks against the service so far submitted queries in a burst:
//! fill the queue, drain it, measure. Real census traffic arrives over
//! time, and *how* it arrives changes what the latency histogram sees —
//! a Poisson stream keeps the queue short, while a heavy-tailed process
//! front-loads bursts that pile queries behind one another and stretch
//! the tail percentiles. The campaign runner in `census-bench` needs
//! both shapes, and it needs them reproducibly: the same spec must
//! replay the same arrival trace on every machine.
//!
//! [`ArrivalProcess`] delivers that. Each inter-arrival gap is a pure
//! function of `(process, base_seed, index)`: gap `i` draws from its own
//! RNG stream seeded with
//! `stream_seed(StreamDomain::Arrival, base_seed, i)`, so a schedule's
//! prefix never depends on how many arrivals are eventually sampled,
//! and the [`StreamDomain::Arrival`] tag keeps the trace decorrelated
//! from the walk and churn streams even at equal base seeds.
//!
//! Gaps are in integer microseconds — the same unit the service's
//! query-latency histogram records — so a driver can pace submissions
//! with plain `sleep` calls or compress the trace for smoke runs by
//! scaling the gaps.

use census_walk::stream::{stream_seed, SplitMix64, StreamDomain};
use rand::Rng;

/// A deterministic query arrival process: how inter-arrival gaps between
/// consecutive query submissions are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless open-loop traffic: exponential gaps with the given
    /// mean arrival rate (arrivals per second).
    Poisson {
        /// Mean arrivals per second.
        rate_hz: f64,
    },
    /// Heavy-tailed open-loop traffic: Pareto-distributed gaps whose
    /// scale is chosen so the *mean* rate matches `rate_hz`, but whose
    /// tail index `alpha` controls burstiness — smaller `alpha` (must
    /// exceed 1 for the mean to exist) piles more mass into rare long
    /// gaps and, symmetrically, dense bursts between them.
    Pareto {
        /// Mean arrivals per second.
        rate_hz: f64,
        /// Tail index; must be `> 1.0` so the mean gap is finite.
        alpha: f64,
    },
    /// Closed-loop traffic: `concurrency` queries are kept in flight at
    /// all times, each submission waiting on a completion rather than a
    /// clock. All gaps are zero; the pacing comes from the service
    /// itself.
    Closed {
        /// Number of queries the driver keeps in flight.
        concurrency: usize,
    },
}

impl ArrivalProcess {
    /// The inter-arrival gap, in microseconds, between submissions
    /// `index` and `index + 1`.
    ///
    /// Pure in `(self, base_seed, index)`: gap `i` is drawn from its own
    /// domain-tagged stream, so schedules of different lengths agree on
    /// their common prefix.
    #[must_use]
    pub fn gap_micros(&self, base_seed: u64, index: u64) -> u64 {
        let mut rng = SplitMix64::new(stream_seed(StreamDomain::Arrival, base_seed, index));
        // u ∈ [0, 1), so 1 - u ∈ (0, 1]: ln never sees zero and the
        // Pareto power never divides by zero.
        let survival = 1.0 - rng.random::<f64>();
        let gap_secs = match *self {
            ArrivalProcess::Poisson { rate_hz } => {
                assert!(rate_hz > 0.0, "Poisson rate must be positive");
                -survival.ln() / rate_hz
            }
            ArrivalProcess::Pareto { rate_hz, alpha } => {
                assert!(rate_hz > 0.0, "Pareto rate must be positive");
                assert!(
                    alpha > 1.0,
                    "Pareto tail index must exceed 1 for a finite mean"
                );
                // Pareto(x_m, alpha) has mean alpha·x_m/(alpha-1); pick
                // x_m so the mean gap is 1/rate.
                let x_m = (alpha - 1.0) / (alpha * rate_hz);
                x_m * survival.powf(-1.0 / alpha)
            }
            ArrivalProcess::Closed { .. } => 0.0,
        };
        // Saturate instead of wrapping: a pathological tail draw becomes
        // "wait a very long time", never a tiny wrapped gap.
        let micros = gap_secs * 1e6;
        if micros >= u64::MAX as f64 {
            u64::MAX
        } else {
            micros as u64
        }
    }

    /// Absolute submission offsets (microseconds from trace start) for
    /// the first `count` arrivals: the cumulative sums of
    /// [`gap_micros`](Self::gap_micros), saturating at `u64::MAX`.
    #[must_use]
    pub fn schedule_micros(&self, base_seed: u64, count: usize) -> Vec<u64> {
        let mut at = 0u64;
        (0..count as u64)
            .map(|i| {
                let here = at;
                at = at.saturating_add(self.gap_micros(base_seed, i));
                here
            })
            .collect()
    }

    /// The number of queries the driver keeps in flight: `concurrency`
    /// for closed-loop processes, `None` for open-loop ones (arrivals
    /// ignore completions).
    #[must_use]
    pub fn concurrency(&self) -> Option<usize> {
        match *self {
            ArrivalProcess::Closed { concurrency } => Some(concurrency),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_pure_functions_of_seed_and_index() {
        let p = ArrivalProcess::Poisson { rate_hz: 100.0 };
        for i in 0..32 {
            assert_eq!(p.gap_micros(7, i), p.gap_micros(7, i));
        }
        // Different base seeds give different traces.
        let a: Vec<u64> = (0..32).map(|i| p.gap_micros(1, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| p.gap_micros(2, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn schedule_prefixes_agree_across_lengths() {
        let p = ArrivalProcess::Pareto {
            rate_hz: 50.0,
            alpha: 1.5,
        };
        let short = p.schedule_micros(9, 10);
        let long = p.schedule_micros(9, 100);
        assert_eq!(short[..], long[..10]);
    }

    #[test]
    fn schedules_start_at_zero_and_are_monotone() {
        for p in [
            ArrivalProcess::Poisson { rate_hz: 200.0 },
            ArrivalProcess::Pareto {
                rate_hz: 200.0,
                alpha: 2.5,
            },
        ] {
            let sched = p.schedule_micros(3, 64);
            assert_eq!(sched[0], 0);
            for w in sched.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn closed_loop_has_zero_gaps_and_reports_concurrency() {
        let p = ArrivalProcess::Closed { concurrency: 8 };
        assert_eq!(p.concurrency(), Some(8));
        assert!(p.schedule_micros(1, 16).iter().all(|&t| t == 0));
        let open = ArrivalProcess::Poisson { rate_hz: 10.0 };
        assert_eq!(open.concurrency(), None);
    }

    #[test]
    fn poisson_mean_gap_tracks_the_rate() {
        // 1000 gaps at 1 kHz should average ~1000 µs; a factor-of-two
        // band is far wider than the sampling noise at n = 4096.
        let p = ArrivalProcess::Poisson { rate_hz: 1000.0 };
        let n = 4096u64;
        let total: u64 = (0..n).map(|i| p.gap_micros(11, i)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (500.0..2000.0).contains(&mean),
            "mean Poisson gap {mean} µs far from the 1000 µs target"
        );
    }

    #[test]
    fn pareto_is_burstier_than_poisson_at_equal_rate() {
        // Same mean rate, but the heavy tail concentrates most gaps
        // below the mean while a few huge ones carry the balance: the
        // Pareto trace's maximum gap should dominate Poisson's.
        let n = 4096u64;
        let poisson = ArrivalProcess::Poisson { rate_hz: 100.0 };
        let pareto = ArrivalProcess::Pareto {
            rate_hz: 100.0,
            alpha: 1.2,
        };
        let max_poisson = (0..n).map(|i| poisson.gap_micros(5, i)).max().unwrap();
        let max_pareto = (0..n).map(|i| pareto.gap_micros(5, i)).max().unwrap();
        assert!(
            max_pareto > max_poisson,
            "heavy tail should produce the longest gap (pareto {max_pareto} vs poisson {max_poisson})"
        );
    }

    proptest::proptest! {
        /// Purity: a Pareto gap is a function of `(process, seed, index)`
        /// alone — re-evaluation, neighbouring indices, and other seeds
        /// never perturb it, so schedule prefixes are stable by
        /// construction.
        #[test]
        fn pareto_gap_is_a_pure_per_index_function_of_the_seed(
            seed in proptest::prelude::any::<u64>(),
            rate_hz in 1.0f64..50.0,
            alpha in 1.2f64..4.0,
            index in 0u64..4096,
        ) {
            let p = ArrivalProcess::Pareto { rate_hz, alpha };
            let first = p.gap_micros(seed, index);
            // Interleave draws that must not matter.
            let _ = p.gap_micros(seed.wrapping_add(1), index);
            let _ = p.gap_micros(seed, index.wrapping_add(1));
            proptest::prop_assert_eq!(p.gap_micros(seed, index), first);
            // The gap never undershoots the distribution's scale x_m
            // (up to the integer-microsecond floor).
            let x_m_micros = (alpha - 1.0) / (alpha * rate_hz) * 1e6;
            proptest::prop_assert!(first as f64 >= x_m_micros.floor());
        }

        /// Shape: the empirical tail mass above `2·x_m` matches the
        /// Pareto survival `(x_m/t)^alpha = 2^-alpha` within sampling
        /// tolerance, for every seed and tail index.
        #[test]
        fn pareto_tail_mass_matches_the_shape(
            seed in proptest::prelude::any::<u64>(),
            rate_hz in 1.0f64..50.0,
            alpha in 1.2f64..4.0,
        ) {
            let p = ArrivalProcess::Pareto { rate_hz, alpha };
            let n = 4096u64;
            let x_m_micros = (alpha - 1.0) / (alpha * rate_hz) * 1e6;
            let threshold = 2.0 * x_m_micros;
            let tail = (0..n)
                .filter(|&i| p.gap_micros(seed, i) as f64 > threshold)
                .count();
            let empirical = tail as f64 / n as f64;
            let expected = 0.5f64.powf(alpha);
            proptest::prop_assert!(
                (empirical - expected).abs() < 0.04,
                "tail mass {} far from 2^-alpha = {} (alpha = {})",
                empirical, expected, alpha
            );
        }
    }

    #[test]
    fn arrival_traces_differ_from_walk_streams_at_equal_seed() {
        // The domain tag is doing its job: the first arrival stream and
        // the first service-query stream from the same base seed differ.
        assert_ne!(
            stream_seed(StreamDomain::Arrival, 42, 0),
            stream_seed(StreamDomain::ServiceQuery, 42, 0),
        );
    }
}

//! The bounded query queue: fail-fast admission, blocking drain.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::query::{Query, SubmitError};

/// One queued unit of work: the query plus its admission-order id.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) query: Query,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Next id to hand out; ids are allocated under the lock and only to
    /// *accepted* queries, so accepted ids are exactly `0..accepted` with
    /// no holes regardless of how many submissions were rejected.
    next_id: u64,
    /// Cleared by [`JobQueue::close`]; a closed queue refuses pushes and
    /// lets poppers drain the remainder, then return `None`.
    open: bool,
}

/// A bounded MPMC queue of [`Job`]s.
///
/// Admission is *fail-fast*: [`JobQueue::push`] on a full queue returns
/// [`SubmitError::Overloaded`] immediately instead of blocking, making
/// backpressure visible to the submitter (who still holds the rejected
/// query — nothing is dropped silently). Removal is *blocking*: workers
/// park on a condvar until a job or shutdown arrives, and shutdown lets
/// them drain every accepted job before they exit — the other half of
/// the no-silent-drops contract.
#[derive(Debug)]
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                next_id: 0,
                open: true,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admits `query`, returning its freshly allocated id and the queue
    /// depth after insertion — or refuses it when the queue is full (or
    /// closed), allocating no id.
    pub(crate) fn push(&self, query: Query) -> Result<(u64, usize), SubmitError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if !state.open || state.jobs.len() >= self.capacity {
            return Err(SubmitError::Overloaded);
        }
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.push_back(Job { id, query });
        let depth = state.jobs.len();
        drop(state);
        self.available.notify_one();
        Ok((id, depth))
    }

    /// Blocks until a job is available, returning it with the depth left
    /// behind, or `None` once the queue is closed *and* drained.
    pub(crate) fn pop(&self) -> Option<(Job, usize)> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some((job, state.jobs.len()));
            }
            if !state.open {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Blocks until at least one job is available, then drains up to
    /// `max` of them in admission order, returning the batch and the
    /// depth left behind — or `None` once the queue is closed *and*
    /// drained. Only the first job is waited for: the rest of the batch
    /// is whatever is already queued, so an idle service still answers
    /// single queries immediately instead of waiting to fill a batch.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub(crate) fn pop_batch(&self, max: usize) -> Option<(Vec<Job>, usize)> {
        assert!(max > 0, "batch size must be positive");
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if !state.jobs.is_empty() {
                let take = state.jobs.len().min(max);
                let batch: Vec<Job> = state.jobs.drain(..take).collect();
                return Some((batch, state.jobs.len()));
            }
            if !state.open {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Stops admission and wakes every parked worker so the queue can
    /// drain to empty.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue poisoned").open = false;
        self.available.notify_all();
    }

    /// Jobs currently queued.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Counter;
    use census_core::RandomTour;

    fn tour() -> Query {
        Query::Count(Counter::RandomTour(RandomTour::new()))
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(tour()).expect("fits"), (0, 1));
        assert_eq!(q.push(tour()).expect("fits"), (1, 2));
        assert_eq!(q.push(tour()), Err(SubmitError::Overloaded));
        assert_eq!(q.depth(), 2);
        // Popping frees a slot; the rejection burned no id.
        let (popped, left) = q.pop().expect("open queue with jobs");
        assert_eq!(popped.id, 0);
        assert_eq!(left, 1);
        assert_eq!(q.push(tour()).expect("fits").0, 2);
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let q = JobQueue::new(4);
        q.push(tour()).expect("fits");
        q.push(tour()).expect("fits");
        q.close();
        assert_eq!(q.push(tour()), Err(SubmitError::Overloaded));
        // Accepted jobs survive the close, in order.
        assert_eq!(q.pop().expect("draining").0.id, 0);
        assert_eq!(q.pop().expect("draining").0.id, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_batch_drains_what_is_queued_without_waiting_for_more() {
        let q = JobQueue::new(8);
        for _ in 0..5 {
            q.push(tour()).expect("fits");
        }
        // The batch takes what is there, capped at max, in order.
        let (batch, left) = q.pop_batch(3).expect("open queue with jobs");
        assert_eq!(batch.iter().map(|j| j.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(left, 2);
        // A larger max than the remainder returns the remainder.
        let (rest, left) = q.pop_batch(64).expect("two left");
        assert_eq!(rest.iter().map(|j| j.id).collect::<Vec<_>>(), [3, 4]);
        assert_eq!(left, 0);
        q.close();
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn close_releases_blocked_workers() {
        let q = JobQueue::new(1);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.pop());
            // The waiter parks on the empty queue until close wakes it.
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert!(waiter.join().expect("no panic").is_none());
        });
    }
}

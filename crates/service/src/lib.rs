//! A concurrent continuous-census query engine with epoch-managed
//! overlay snapshots.
//!
//! The paper frames Random Tour (§3.1) and Sample & Collide (§4.2) as
//! *on-demand services* any peer can invoke at any time, but everything
//! below this crate is batch-shaped: `census_sim::runner` executes a
//! fixed series of estimates and exits. `census-service` adds the
//! missing deployment shape — a long-running [`CensusService`] serving
//! concurrent query traffic over a churning overlay:
//!
//! - **Epoch-managed snapshots** ([`EpochChain`]): the live
//!   [`DynamicNetwork`](census_sim::DynamicNetwork) is frozen into
//!   `Arc<FrozenView>` epochs swapped atomically. Readers pin an epoch
//!   with one `Arc` clone and walk it lock-free; a churn-applier thread
//!   consumes a [`MembershipDelta`](census_sim::MembershipDelta) stream
//!   and re-freezes under a [`RefreezePolicy`] (membership-delta
//!   threshold plus max-staleness bound, generalising `run_dynamic`'s
//!   refreeze-on-delta rule).
//! - **A bounded query queue with explicit backpressure**: submissions
//!   beyond capacity bounce with [`SubmitError::Overloaded`] — never a
//!   silent drop — and shutdown drains every accepted query, closing the
//!   `submitted = accepted + rejected`, `accepted = completed + expired`
//!   ledger exactly.
//! - **A deterministic worker pool** (std-only `std::thread::scope`,
//!   like `census_sim::parallel`): each [`Query`]'s RNG stream is
//!   `stream_seed(StreamDomain::ServiceQuery, seed, id)` (the
//!   domain-tagged SplitMix64 schedule of `census_walk::stream`), and
//!   the walk runs entirely on the pinned epoch, so every result is a
//!   pure function of `(seed, id, epoch)` regardless of worker count,
//!   batch-drain width, or thread interleaving. Workers can optionally
//!   drain the queue in batches and advance a batch's same-epoch sample
//!   walks as one lock-step CTRW frontier
//!   ([`ServiceConfig::with_batch_drain`]).
//! - **Cost observability throughout**: query counters, queue-depth /
//!   epoch-lag / snapshot-epoch gauges, and a per-query latency
//!   histogram, all through the ordinary
//!   [`Recorder`](census_metrics::Recorder) plumbing.
//! - **A sharded deployment shape** ([`ShardedCensusService`]): the
//!   snapshot is partitioned into a
//!   [`ShardedFrozenView`](census_graph::ShardedFrozenView), each shard
//!   gets its own worker pool and epoch stamp
//!   ([`ShardedEpochChain`]), and a `Query::Sample` walk that crosses a
//!   cut edge parks as a handoff flight on the destination shard —
//!   byte-identical answers to the unsharded service at every shard
//!   count, by the walk-stitching construction of
//!   [`census_walk::segment`].
//!
//! # Examples
//!
//! ```
//! use census_graph::generators;
//! use census_service::{CensusService, Counter, Query, QueryAnswer, ServiceConfig};
//! use census_core::RandomTour;
//! use census_sim::{DynamicNetwork, JoinRule, Scenario};
//! use rand::{SeedableRng, rngs::SmallRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let net = DynamicNetwork::new(
//!     generators::balanced(1_000, 10, &mut rng),
//!     JoinRule::Balanced { max_degree: 10 },
//! );
//! let mut service = CensusService::new(net, ServiceConfig::new(99).with_workers(4));
//!
//! // Serve a small batch while 100 peers depart.
//! let events = Scenario::new().remove_gradually(0, 5, 100).events(5);
//! let ((), outcomes) = service.serve(&events, |census| {
//!     for _ in 0..8 {
//!         census
//!             .submit(Query::Count(Counter::RandomTour(RandomTour::new())))
//!             .expect("queue has room");
//!     }
//! });
//! assert_eq!(outcomes.len(), 8);
//! for outcome in &outcomes {
//!     if let Ok(QueryAnswer::Count(estimate)) = &outcome.result {
//!         println!("query {}: N ≈ {:.0} (epoch {})", outcome.id, estimate.value, outcome.epoch);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod epoch;
mod query;
mod queue;
mod service;
mod sharded;

pub use arrival::ArrivalProcess;
pub use epoch::{EpochChain, RefreezePolicy};
pub use query::{Counter, Query, QueryAnswer, QueryOutcome, SubmitError};
pub use service::{CensusService, ServiceConfig, ServiceHandle};
pub use sharded::{ShardedCensusService, ShardedEpochChain, ShardedServiceHandle, ShardedSnapshot};

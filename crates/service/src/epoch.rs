//! The epoch-managed snapshot chain and its refreeze policy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use census_graph::FrozenView;

/// When the churn applier re-freezes the live overlay into a new epoch.
///
/// Two bounds, refreeze when either trips after applying a membership
/// event:
///
/// - **delta threshold**: the accumulated membership change (joins plus
///   departures, unsigned) since the last freeze reaches
///   `delta_threshold`;
/// - **max staleness**: `max_staleness` events have been applied since
///   the last freeze, regardless of how small each was.
///
/// [`RefreezePolicy::eager`] (both bounds at 1) re-freezes after every
/// event — exactly the refreeze-on-nonzero-delta rule of
/// `census_sim::runner::run_dynamic` — while larger bounds amortise the
/// `O(slots + edges)` freeze over more churn at the price of staler
/// answers. Staleness is measured in *events*, not wall time, so a given
/// event stream always produces the same epoch sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreezePolicy {
    delta_threshold: u64,
    max_staleness: u64,
}

impl RefreezePolicy {
    /// A policy with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero (a zero bound would demand a
    /// refreeze before any event applied).
    #[must_use]
    pub fn new(delta_threshold: u64, max_staleness: u64) -> Self {
        assert!(delta_threshold > 0, "delta threshold must be positive");
        assert!(max_staleness > 0, "staleness bound must be positive");
        Self {
            delta_threshold,
            max_staleness,
        }
    }

    /// Refreeze after every membership event (`run_dynamic`'s rule).
    #[must_use]
    pub fn eager() -> Self {
        Self::new(1, 1)
    }

    /// Accumulated membership change that forces a refreeze.
    #[must_use]
    pub fn delta_threshold(&self) -> u64 {
        self.delta_threshold
    }

    /// Applied-event count that forces a refreeze.
    #[must_use]
    pub fn max_staleness(&self) -> u64 {
        self.max_staleness
    }

    /// Whether a freeze is due after `pending_delta` accumulated change
    /// over `staleness` applied events.
    #[must_use]
    pub(crate) fn is_due(&self, pending_delta: u64, staleness: u64) -> bool {
        pending_delta >= self.delta_threshold || staleness >= self.max_staleness
    }
}

impl Default for RefreezePolicy {
    fn default() -> Self {
        Self::eager()
    }
}

/// The atomically swapped chain of frozen snapshots.
///
/// Readers *pin* the newest epoch with one `Arc` clone under a read lock
/// and then walk it lock-free for as long as they like; the churn applier
/// *publishes* a new epoch by swapping the `Arc` under the write lock.
/// Pinned epochs stay alive until their last reader drops them, so a
/// long-running query is never invalidated mid-walk — it just answers
/// against the (slightly stale) epoch it pinned, which is exactly the
/// consistency a snapshot-based census can promise.
#[derive(Debug)]
pub struct EpochChain {
    latest: RwLock<Arc<FrozenView>>,
    /// Cached copy of `latest.epoch()` so lag reads never take the lock.
    latest_epoch: AtomicU64,
}

impl EpochChain {
    /// Starts the chain at `view`.
    #[must_use]
    pub fn new(view: FrozenView) -> Self {
        let epoch = view.epoch();
        Self {
            latest: RwLock::new(Arc::new(view)),
            latest_epoch: AtomicU64::new(epoch),
        }
    }

    /// Pins the newest epoch: a cheap `Arc` clone the caller may hold
    /// across arbitrarily long walks.
    #[must_use]
    pub fn pin(&self) -> Arc<FrozenView> {
        Arc::clone(&self.latest.read().expect("snapshot chain poisoned"))
    }

    /// Publishes `view` as the newest epoch.
    pub fn publish(&self, view: FrozenView) {
        let epoch = view.epoch();
        let mut slot = self.latest.write().expect("snapshot chain poisoned");
        *slot = Arc::new(view);
        self.latest_epoch.store(epoch, Ordering::Release);
    }

    /// Epoch stamp of the newest published snapshot.
    #[must_use]
    pub fn latest_epoch(&self) -> u64 {
        self.latest_epoch.load(Ordering::Acquire)
    }

    /// How many epochs behind the newest snapshot `pinned` is.
    #[must_use]
    pub fn lag_of(&self, pinned: &FrozenView) -> u64 {
        self.latest_epoch().saturating_sub(pinned.epoch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn eager_policy_fires_on_every_event() {
        let p = RefreezePolicy::eager();
        assert!(p.is_due(1, 1));
        assert!(p.is_due(5, 1));
        assert!(!p.is_due(0, 0));
    }

    #[test]
    fn bounds_trip_independently() {
        let p = RefreezePolicy::new(10, 3);
        assert!(!p.is_due(9, 2));
        assert!(p.is_due(10, 1), "delta threshold alone must trip");
        assert!(p.is_due(0, 3), "staleness bound alone must trip");
    }

    #[test]
    #[should_panic(expected = "delta threshold must be positive")]
    fn zero_delta_threshold_panics() {
        let _ = RefreezePolicy::new(0, 1);
    }

    #[test]
    fn pinned_epochs_survive_publication() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut g = generators::balanced(50, 4, &mut rng);
        let chain = EpochChain::new(g.freeze());
        let pinned = chain.pin();
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(chain.lag_of(&pinned), 0);

        let victim = g.random_node(&mut rng).expect("non-empty");
        g.remove_node(victim).expect("alive");
        chain.publish(g.freeze());

        // The old pin still answers, one epoch behind.
        assert_eq!(chain.latest_epoch(), 1);
        assert_eq!(chain.lag_of(&pinned), 1);
        assert_eq!(pinned.num_nodes(), 50);
        assert_eq!(chain.pin().num_nodes(), 49);
    }
}

//! The query vocabulary and outcome types.

use std::fmt;

use census_core::{Estimate, EstimateError, RandomTour, SampleCollide};
use census_graph::NodeId;
use census_sampling::{CtrwSampler, Sample};

/// A size-counting method a [`Query::Count`] can invoke.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Counter {
    /// Random Tour (§3): one walk from the initiator back to itself.
    RandomTour(RandomTour),
    /// Sample & Collide (§4) over the paper's CTRW uniform sampler.
    SampleCollide(SampleCollide<CtrwSampler>),
}

/// One unit of work a client submits to a [`CensusService`].
///
/// Queries are plain `Copy` values: the service executes them against the
/// epoch each worker pins at dequeue time, with an RNG stream derived
/// from the query id alone, so a `Query` carries no state of its own.
/// The aggregate variant takes a plain function pointer (`fn`, not a
/// closure) so queries stay `Send + Sync + Copy` and comparable.
///
/// [`CensusService`]: crate::CensusService
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Estimate the overlay size `N̂` with the given counting method.
    Count(Counter),
    /// Draw one approximately uniform peer with a CTRW walk (§4.1).
    Sample(CtrwSampler),
    /// Estimate the aggregate `Σ_j f(j)` over all peers with a Random
    /// Tour (§3.1's general form).
    Aggregate(fn(NodeId) -> f64),
}

/// What a successfully completed [`Query`] produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryAnswer {
    /// A size estimate, from either counting method.
    Count(Estimate),
    /// A sampled peer with its message cost.
    Sample(Sample),
    /// An aggregate estimate `Σ̂ f`.
    Aggregate(Estimate),
}

impl QueryAnswer {
    /// Overlay messages this answer cost.
    #[must_use]
    pub fn messages(&self) -> u64 {
        match self {
            QueryAnswer::Count(e) | QueryAnswer::Aggregate(e) => e.messages,
            QueryAnswer::Sample(s) => s.hops,
        }
    }
}

/// The terminal record of one accepted query.
///
/// Every accepted query produces exactly one outcome: `result` is `Ok`
/// for a completed query and `Err` for an expired one (deadline
/// exhausted, walk lost to churn or faults, or a degenerate
/// configuration). Together with the rejected-at-submission count this
/// closes the service ledger — no accepted query is ever silently
/// dropped.
///
/// For a fixed service seed the `result` is a pure function of
/// `(seed, id, epoch)`: the worker derives the query's private RNG
/// stream as `stream_seed(StreamDomain::ServiceQuery, seed, id)` and
/// walks only the pinned epoch, so neither thread interleaving nor the
/// batch-drain width can perturb it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The id [`submit`](crate::ServiceHandle::submit) returned.
    pub id: u64,
    /// The query, echoed back.
    pub query: Query,
    /// Epoch stamp of the snapshot the answer was computed on.
    pub epoch: u64,
    /// The answer, or why the query expired.
    pub result: Result<QueryAnswer, EstimateError>,
}

/// Why a submission was refused. Returned by
/// [`ServiceHandle::submit`](crate::ServiceHandle::submit) — the
/// service's explicit backpressure, never a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry later or widen the queue.
    Overloaded,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "query queue is at capacity"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_plain_copyable_values() {
        fn degree_weight(_n: NodeId) -> f64 {
            1.0
        }
        let q = Query::Aggregate(degree_weight);
        let copy = q;
        assert_eq!(q, copy);
        let c = Query::Count(Counter::RandomTour(RandomTour::new()));
        assert_eq!(c, c);
        // Queries cross thread boundaries by value.
        fn assert_send_sync<T: Send + Sync + Copy>() {}
        assert_send_sync::<Query>();
    }

    #[test]
    fn answers_expose_their_message_cost() {
        let e = Estimate {
            value: 100.0,
            messages: 42,
        };
        assert_eq!(QueryAnswer::Count(e).messages(), 42);
        assert_eq!(QueryAnswer::Aggregate(e).messages(), 42);
        let s = Sample {
            node: NodeId::new(3),
            hops: 7,
        };
        assert_eq!(QueryAnswer::Sample(s).messages(), 7);
    }
}

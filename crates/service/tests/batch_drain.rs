//! Acceptance: batch-drain mode is an execution strategy, not a
//! semantics change — the same workload answered at drain width 1 and
//! at wide drains must match byte for byte, faults included, because
//! every query runs entirely on its private tagged RNG stream whether
//! its first walk attempt went through the coalesced CTRW frontier or
//! the serial path.

use census_core::{RandomTour, SampleCollide};
use census_graph::{generators, NodeId};
use census_metrics::{Metric, Registry};
use census_sampling::CtrwSampler;
use census_service::{CensusService, Counter, Query, QueryOutcome, ServiceConfig};
use census_sim::faults::FaultPlan;
use census_sim::{DynamicNetwork, JoinRule};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn network(seed: u64) -> DynamicNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    DynamicNetwork::new(
        generators::balanced(400, 8, &mut rng),
        JoinRule::Balanced { max_degree: 8 },
    )
}

fn unit_weight(_node: NodeId) -> f64 {
    1.0
}

/// A sample-heavy workload: most jobs ride the coalesced frontier, the
/// rest exercise the serial fallback inside the same batches.
fn query_mix(i: u64) -> Query {
    match i % 5 {
        0 => Query::Count(Counter::RandomTour(RandomTour::new())),
        1 => Query::Count(Counter::SampleCollide(SampleCollide::new(
            CtrwSampler::new(6.0),
            3,
        ))),
        4 => Query::Aggregate(unit_weight),
        _ => Query::Sample(CtrwSampler::new(6.0)),
    }
}

fn run(config: ServiceConfig) -> (Vec<QueryOutcome>, Registry) {
    let mut service = CensusService::new(network(5), config);
    let reg = Registry::new();
    let ((), outcomes) = service.serve_rec(&[], &reg, |census| {
        for i in 0..45 {
            census.submit(query_mix(i)).expect("queue has room");
        }
    });
    (outcomes, reg)
}

#[test]
fn wide_drain_matches_single_drain_byte_for_byte() {
    let (serial, serial_reg) = run(ServiceConfig::new(808).with_workers(1));
    let (batched, batched_reg) = run(ServiceConfig::new(808).with_workers(1).with_batch_drain(16));
    assert_eq!(serial.len(), 45);
    // Full structural equality: ids, echoed queries, pinned epochs, and
    // every answer down to f64 bit patterns.
    assert_eq!(serial, batched);
    // Per-job walks are identical streams, so the walk-cost ledger
    // reconciles too — only the batching telemetry may differ.
    for metric in [
        Metric::CtrwHops,
        Metric::SojournDraws,
        Metric::SamplesDrawn,
        Metric::WalkRetries,
        Metric::QueriesCompleted,
        Metric::QueriesExpired,
    ] {
        assert_eq!(
            serial_reg.counter(metric),
            batched_reg.counter(metric),
            "counter {metric:?} diverged between drain widths"
        );
    }
}

#[test]
fn batch_drain_composes_with_the_worker_pool() {
    let (reference, _) = run(ServiceConfig::new(909).with_workers(1));
    let (pooled, _) = run(ServiceConfig::new(909).with_workers(4).with_batch_drain(8));
    assert_eq!(reference, pooled);
}

#[test]
fn batch_drain_is_deterministic_under_fault_injection() {
    // Lossy walks force frontier failures and serial retries on the same
    // per-job fault wrapper the frontier used; outcomes must still be
    // independent of how jobs were grouped into batches.
    let plan = FaultPlan::new()
        .with_message_loss(0.05, 31)
        .with_retransmits(1);
    let config = |drain| {
        ServiceConfig::new(616)
            .with_workers(2)
            .with_batch_drain(drain)
            .with_faults(plan)
            .with_deadline(20_000)
            .with_retries(2)
    };
    let (narrow, _) = run(config(1));
    let (wide, _) = run(config(12));
    assert_eq!(narrow, wide);
}

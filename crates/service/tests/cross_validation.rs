//! Statistical acceptance: a batch of `Count` queries answered by the
//! concurrent service must agree with the serial `run_static` harness on
//! the same overlay — the worker pool changes the execution shape, not
//! the estimator's distribution.

use census_core::{RandomTour, SampleCollide};
use census_graph::generators;
use census_sampling::CtrwSampler;
use census_service::{CensusService, Counter, Query, QueryAnswer, ServiceConfig};
use census_sim::runner::run_static;
use census_sim::{DynamicNetwork, JoinRule};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 400;

fn network(seed: u64) -> DynamicNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    DynamicNetwork::new(
        generators::balanced(N, 8, &mut rng),
        JoinRule::Balanced { max_degree: 8 },
    )
}

/// Sample mean and the standard error of that mean.
fn moments(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    assert!(n > 1.0, "need at least two samples");
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Runs `queries` copies of `query` through a 4-worker service and
/// collects the count estimates.
fn service_estimates(query: Query, queries: u64, seed: u64) -> Vec<f64> {
    let mut service = CensusService::new(network(1), ServiceConfig::new(seed).with_workers(4));
    let ((), outcomes) = service.serve(&[], |census| {
        for _ in 0..queries {
            census.submit(query).expect("queue has room");
        }
    });
    outcomes
        .into_iter()
        .map(|o| match o.result.expect("static overlay, no deadline") {
            QueryAnswer::Count(e) => e.value,
            other => panic!("expected a count, got {other:?}"),
        })
        .collect()
}

#[test]
fn batched_tour_counts_match_the_serial_harness() {
    let runs = 200u64;

    // Serial reference: the PR-1 harness, one fixed initiator.
    let net = network(1);
    let probe = net.graph().nodes().next().expect("non-empty");
    let mut rng = SmallRng::seed_from_u64(2);
    let serial: Vec<f64> = run_static(&net, &RandomTour::new(), probe, runs, &mut rng)
        .into_iter()
        .map(|r| r.estimate)
        .collect();

    // Concurrent service: same overlay, per-query initiators and RNG
    // streams, 4 workers racing over the queue.
    let batched = service_estimates(
        Query::Count(Counter::RandomTour(RandomTour::new())),
        runs,
        3,
    );
    assert_eq!(batched.len(), runs as usize);

    // Both are unbiased estimators of N (§3.1), so both means must sit
    // within 4 standard errors of the truth, and of each other.
    let (serial_mean, serial_se) = moments(&serial);
    let (batched_mean, batched_se) = moments(&batched);
    let n = N as f64;
    assert!(
        (serial_mean - n).abs() < 4.0 * serial_se.max(1.0),
        "serial mean {serial_mean} vs true {n} (se {serial_se})"
    );
    assert!(
        (batched_mean - n).abs() < 4.0 * batched_se.max(1.0),
        "batched mean {batched_mean} vs true {n} (se {batched_se})"
    );
    let pooled_se = (serial_se * serial_se + batched_se * batched_se).sqrt();
    assert!(
        (serial_mean - batched_mean).abs() < 4.0 * pooled_se.max(1.0),
        "serial {serial_mean} and batched {batched_mean} diverge (pooled se {pooled_se})"
    );
}

#[test]
fn batched_sample_collide_counts_match_the_serial_harness() {
    let reps = 32u64;
    let sc = SampleCollide::new(CtrwSampler::new(10.0), 15);

    let net = network(1);
    let probe = net.graph().nodes().next().expect("non-empty");
    let mut rng = SmallRng::seed_from_u64(4);
    let serial: Vec<f64> = run_static(&net, &sc, probe, reps, &mut rng)
        .into_iter()
        .map(|r| r.estimate)
        .collect();

    let batched = service_estimates(Query::Count(Counter::SampleCollide(sc)), reps, 5);
    assert_eq!(batched.len(), reps as usize);

    // §4.2's estimator concentrates around N for l = 15; the same 25%
    // envelope proto_equivalence uses is comfortably 4-sigma here.
    let (serial_mean, _) = moments(&serial);
    let (batched_mean, _) = moments(&batched);
    let n = N as f64;
    for (name, mean) in [("serial", serial_mean), ("batched", batched_mean)] {
        assert!(
            (mean / n - 1.0).abs() < 0.25,
            "{name} mean {mean} strays from true size {n}"
        );
    }
}

//! Proptest acceptance: the service's backpressure ledger reconciles
//! exactly under fault injection — `submitted = accepted + rejected` and
//! `accepted = completed + expired` — across arbitrary worker counts,
//! queue capacities, offered loads, and [`FaultPlan`]s. No accepted
//! query is ever silently dropped, no rejected query leaks an id.

use census_core::{RandomTour, SampleCollide};
use census_graph::generators;
use census_metrics::{HistogramMetric, Metric, Registry};
use census_sampling::CtrwSampler;
use census_service::{CensusService, Counter, Query, ServiceConfig, SubmitError};
use census_sim::faults::FaultPlan;
use census_sim::{DynamicNetwork, JoinRule};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn network(seed: u64) -> DynamicNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    DynamicNetwork::new(
        generators::balanced(60, 6, &mut rng),
        JoinRule::Balanced { max_degree: 6 },
    )
}

fn query_mix(i: u64) -> Query {
    match i % 3 {
        0 => Query::Count(Counter::RandomTour(RandomTour::new())),
        1 => Query::Count(Counter::SampleCollide(SampleCollide::new(
            CtrwSampler::new(4.0),
            2,
        ))),
        _ => Query::Sample(CtrwSampler::new(4.0)),
    }
}

proptest! {
    // Each case spins up a real worker pool; 32 cases keeps the suite
    // quick while still sweeping the configuration space.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ledger_reconciles_under_faults(
        seed in any::<u64>(),
        workers in 1usize..5,
        capacity in 1usize..6,
        queries in 0u64..80,
        loss_percent in 0u32..=100,
        retransmits in 0u32..3,
        retries in 0u32..3,
    ) {
        let plan = FaultPlan::new()
            .with_message_loss(f64::from(loss_percent) / 100.0, seed ^ 0xA5A5)
            .with_retransmits(retransmits);
        let config = ServiceConfig::new(seed)
            .with_workers(workers)
            .with_queue_capacity(capacity)
            .with_deadline(10_000)
            .with_retries(retries)
            .with_faults(plan);

        let reg = Registry::new();
        let mut service = CensusService::new(network(seed), config);
        let ((accepted, rejected), outcomes) = service.serve_rec(&[], &reg, |census| {
            let mut accepted = 0u64;
            let mut rejected = 0u64;
            for i in 0..queries {
                match census.submit(query_mix(i)) {
                    Ok(_) => accepted += 1,
                    Err(SubmitError::Overloaded) => rejected += 1,
                }
            }
            (accepted, rejected)
        });

        // First half of the ledger: every submission was either accepted
        // or visibly rejected — nothing vanished at the front door.
        prop_assert_eq!(accepted + rejected, queries);
        prop_assert_eq!(reg.counter(Metric::QueriesSubmitted), queries);
        prop_assert_eq!(reg.counter(Metric::QueriesRejected), rejected);

        // Second half: every accepted query terminated exactly once,
        // either completing or expiring, and produced one outcome.
        prop_assert_eq!(outcomes.len() as u64, accepted);
        let completed = reg.counter(Metric::QueriesCompleted);
        let expired = reg.counter(Metric::QueriesExpired);
        prop_assert_eq!(completed + expired, accepted);
        prop_assert_eq!(
            completed,
            outcomes.iter().filter(|o| o.result.is_ok()).count() as u64
        );
        prop_assert_eq!(
            expired,
            outcomes.iter().filter(|o| o.result.is_err()).count() as u64
        );

        // Exactly one latency observation per accepted query — retries
        // within a query must not double-count it.
        prop_assert_eq!(reg.histogram_count(HistogramMetric::QueryLatency), accepted);

        // Ids are allocated only to accepted queries, so the outcome ids
        // are exactly 0..accepted with no holes from rejections.
        let ids: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
        prop_assert_eq!(ids, (0..accepted).collect::<Vec<u64>>());
    }
}

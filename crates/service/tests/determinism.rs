//! Acceptance: service results are a pure function of (seed, query id,
//! pinned epoch) — the same query set answered at 1 and 8 workers must
//! match byte for byte.

use census_core::{RandomTour, SampleCollide};
use census_graph::{generators, NodeId};
use census_sampling::CtrwSampler;
use census_service::{CensusService, Counter, Query, QueryOutcome, ServiceConfig};
use census_sim::faults::FaultPlan;
use census_sim::{DynamicNetwork, JoinRule};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn network(seed: u64) -> DynamicNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    DynamicNetwork::new(
        generators::balanced(500, 8, &mut rng),
        JoinRule::Balanced { max_degree: 8 },
    )
}

fn degree_weight(_node: NodeId) -> f64 {
    1.0
}

/// A fixed mixed workload cycling through every query kind.
fn query_mix(i: u64) -> Query {
    match i % 4 {
        0 => Query::Count(Counter::RandomTour(RandomTour::new())),
        1 => Query::Count(Counter::SampleCollide(SampleCollide::new(
            CtrwSampler::new(6.0),
            3,
        ))),
        2 => Query::Sample(CtrwSampler::new(6.0)),
        _ => Query::Aggregate(degree_weight),
    }
}

fn outcomes_with(config: ServiceConfig) -> Vec<QueryOutcome> {
    let mut service = CensusService::new(network(3), config);
    let ((), outcomes) = service.serve(&[], |census| {
        for i in 0..40 {
            census.submit(query_mix(i)).expect("queue has room");
        }
    });
    outcomes
}

#[test]
fn results_are_identical_at_1_and_8_workers() {
    let serial = outcomes_with(ServiceConfig::new(1234).with_workers(1));
    let pooled = outcomes_with(ServiceConfig::new(1234).with_workers(8));
    assert_eq!(serial.len(), 40);
    // Full structural equality: ids, echoed queries, pinned epochs, and
    // every answer (estimates compare as exact f64 bit patterns through
    // PartialEq) — thread interleaving must not perturb anything.
    assert_eq!(serial, pooled);
}

#[test]
fn determinism_survives_fault_injection() {
    let plan = FaultPlan::new()
        .with_message_loss(0.05, 21)
        .with_retransmits(1);
    let config = |workers| {
        ServiceConfig::new(77)
            .with_workers(workers)
            .with_faults(plan)
            .with_deadline(20_000)
            .with_retries(2)
    };
    let serial = outcomes_with(config(1));
    let pooled = outcomes_with(config(8));
    assert_eq!(serial, pooled);
}

#[test]
fn a_different_seed_changes_the_answers() {
    let a = outcomes_with(ServiceConfig::new(1234).with_workers(2));
    let b = outcomes_with(ServiceConfig::new(4321).with_workers(2));
    assert_ne!(a, b, "the seed must actually drive the query streams");
}

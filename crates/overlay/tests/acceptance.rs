//! Acceptance bars for the self-constructing overlays: the scale-free
//! construction actually produces a power-law degree distribution at
//! scale, the gradient overlay actually converges to the monotone
//! property, and the engine actually drives a live `census-service`
//! through `serve_driven_rec` — epochs advancing while the overlay
//! assembles itself underneath the query workers.

use census_graph::{generators, Graph};
use census_metrics::NOOP;
use census_overlay::{
    fitted_exponent, monotone_fraction, node_utility, GradientConfig, GradientOverlay,
    OverlayEngine, ScaleFreeConfig, ScaleFreeConstruction,
};
use census_service::{CensusService, Counter, Query, RefreezePolicy, ServiceConfig};
use census_sim::{DynamicNetwork, JoinRule};
use census_stats::Ecdf;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Discrete one-sample KS distance between integer-valued `sample` and a
/// continuous reference CDF: the empirical CDF is compared at each
/// distinct value only (the top of its jump), which is the correct
/// statistic when thousands of nodes tie on small degrees — the generic
/// [`census_stats::ks_statistic`] also scores the bottom of a jump and
/// would report the tie mass itself, not the fit error.
fn discrete_ks<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> f64 {
    let ecdf = Ecdf::new(sample.to_vec());
    let mut distinct: Vec<f64> = sample.to_vec();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite degrees"));
    distinct.dedup();
    distinct
        .into_iter()
        .map(|d| (ecdf.eval(d) - cdf(d)).abs())
        .fold(0.0f64, f64::max)
}

/// Builds a scale-free overlay of `n` nodes with default attachment
/// parameters (m = 3 edges per join, TTL-8 walks) and no adaptation.
fn scale_free_overlay(n: usize, seed: u64) -> Graph {
    let config = ScaleFreeConfig {
        target_size: n,
        joins_per_tick: 8,
        adapt_every: 0,
        ..ScaleFreeConfig::default()
    };
    let edges_per_join = config.edges_per_join;
    let mut g = generators::complete(edges_per_join + 2);
    let mut engine = OverlayEngine::new(ScaleFreeConstruction::new(config), seed);
    let ticks = (n as u64 / 8) + 20;
    engine.run(&mut g, ticks, &NOOP);
    assert_eq!(g.num_nodes(), n, "construction must reach its target");
    g
}

/// The ISSUE's distributional bar: at N = 10_000 the random-walk
/// preferential attachment must be statistically indistinguishable from
/// a power law — Hill exponent in the Barabási–Albert range and a small
/// KS distance against the fitted continuous power-law CDF (with the
/// usual x − ½ continuity correction for integer degrees).
#[test]
fn scale_free_degrees_follow_a_power_law_at_scale() {
    let g = scale_free_overlay(10_000, 2006);
    let d_min = 3usize;
    let gamma = fitted_exponent(&g, d_min).expect("enough tail mass to fit");
    assert!(
        (2.0..=3.6).contains(&gamma),
        "fitted exponent {gamma} outside the preferential-attachment range"
    );

    let x0 = d_min as f64 - 0.5;
    let sample: Vec<f64> = g
        .nodes()
        .map(|v| g.degree(v) as f64)
        .filter(|&d| d >= d_min as f64)
        .collect();
    assert!(
        sample.len() > 9_000,
        "almost every node should clear the minimum degree, got {}",
        sample.len()
    );
    let ks = discrete_ks(&sample, |x| 1.0 - ((x + 0.5) / x0).powf(1.0 - gamma));
    assert!(
        ks < 0.05,
        "KS distance {ks} to the fitted power law is too large"
    );
}

/// A uniform (α = 0) attachment walk must NOT pass the same bar: its
/// degree tail decays exponentially, so the fitted "exponent" and KS
/// distance both blow up. This is the negative control showing the KS
/// check has teeth.
#[test]
fn uniform_attachment_fails_the_power_law_bar() {
    let config = ScaleFreeConfig {
        target_size: 4_000,
        joins_per_tick: 8,
        adapt_every: 0,
        walk_ttl: 0, // expire immediately: attach to the uniform entry point
        ..ScaleFreeConfig::default()
    };
    let mut g = generators::complete(config.edges_per_join + 2);
    let mut engine = OverlayEngine::new(ScaleFreeConstruction::new(config), 9);
    engine.run(&mut g, 520, &NOOP);
    let d_min = 3usize;
    let gamma = fitted_exponent(&g, d_min).expect("fit still defined");
    let x0 = d_min as f64 - 0.5;
    let sample: Vec<f64> = g
        .nodes()
        .map(|v| g.degree(v) as f64)
        .filter(|&d| d >= d_min as f64)
        .collect();
    let ks = discrete_ks(&sample, |x| 1.0 - ((x + 0.5) / x0).powf(1.0 - gamma));
    assert!(
        ks > 0.05 || gamma > 3.6,
        "uniform attachment unexpectedly passed the power-law bar: ks={ks}, gamma={gamma}"
    );
}

/// The gradient overlay's acceptance bar: from a utility-oblivious ring,
/// probe/swap search reaches the full monotone property — every
/// non-maximal node ends up with a strictly-higher-utility neighbor —
/// without ever disconnecting anyone.
#[test]
fn gradient_overlay_converges_to_the_monotone_property() {
    let config = GradientConfig {
        probe_rate: 0.5,
        ..GradientConfig::default()
    };
    let utility_seed = config.utility_seed;
    let mut g = generators::ring(192);
    let before = monotone_fraction(&g, |v| node_utility(utility_seed, v));
    let mut engine = OverlayEngine::new(GradientOverlay::new(config), 77);
    engine.run(&mut g, 400, &NOOP);
    let after = monotone_fraction(&g, |v| node_utility(utility_seed, v));
    assert!(
        after > before,
        "search did not improve the monotone fraction: {before} -> {after}"
    );
    assert!(
        after > 0.99,
        "gradient search stalled at monotone fraction {after}"
    );
    assert!(
        g.nodes().all(|v| g.degree(v) >= 1),
        "gradient rewiring stranded a node"
    );
}

/// The tentpole's service integration: `OverlayEngine::driver` plugged
/// into `serve_driven_rec` makes the service refreeze over an overlay
/// that is still wiring itself. Epochs must advance past the seed epoch,
/// queries must complete against them, and the live network must end at
/// the construction target.
#[test]
fn engine_drives_a_live_census_service() {
    let mut rng = SmallRng::seed_from_u64(11);
    let net = DynamicNetwork::new(
        generators::balanced(32, 6, &mut rng),
        JoinRule::Balanced { max_degree: 6 },
    );
    let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
        target_size: 400,
        adapt_every: 0,
        ..ScaleFreeConfig::default()
    });
    let mut engine = OverlayEngine::new(proto, 23);
    let config = ServiceConfig::new(61)
        .with_workers(2)
        .with_policy(RefreezePolicy::new(40, 1_000));
    let mut svc = CensusService::new(net, config);

    let submitted = std::cell::Cell::new(0u64);
    let ((), outcomes) = svc.serve_driven_rec(120, &NOOP, engine.driver(&NOOP), |census| {
        for _ in 0..24 {
            census
                .submit(Query::Count(Counter::RandomTour(
                    census_core::RandomTour::new(),
                )))
                .expect("queue has room");
            submitted.set(submitted.get() + 1);
        }
    });

    assert_eq!(outcomes.len() as u64, submitted.get(), "ledger closes");
    // ~16 mutations per tick against a 40-mutation refreeze threshold:
    // the 120-step run must publish dozens of epochs. (Asserted on the
    // chain, not on outcome stamps — which epoch a query pins depends on
    // worker scheduling.)
    assert!(
        svc.latest_epoch() >= 5,
        "driver mutations triggered only {} refreezes",
        svc.latest_epoch()
    );
    let completed = outcomes.iter().filter(|o| o.result.is_ok()).count();
    assert!(
        completed > 0,
        "no query completed against the self-assembling overlay"
    );
    assert_eq!(
        svc.network().size(),
        400,
        "the driven construction must reach its target size"
    );
    assert_eq!(
        engine.ticks_run(),
        120,
        "one protocol tick per service step"
    );
}

//! The overlay determinism contract, end to end: a construction is a
//! pure function of `(initial graph, protocol, seed)`, replayable
//! bit-for-bit, and running it never perturbs estimator walk streams —
//! the RNG-isolation half of the census-under-adaptation story.

use census_core::{RandomTour, SizeEstimator};
use census_graph::{generators, FrozenView, Graph};
use census_metrics::{RunCtx, NOOP};
use census_overlay::{
    GradientConfig, GradientOverlay, OverlayEngine, ScaleFreeConfig, ScaleFreeConstruction,
};
use census_sim::MembershipDelta;
use census_walk::stream::{stream_seed, StreamDomain};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One full scale-free construction: returns the frozen edge set and the
/// membership stream, the two artifacts a replay must reproduce exactly.
fn build_scale_free(seed: u64, ticks: u64) -> (FrozenView, Vec<MembershipDelta>) {
    let mut g = generators::complete(5);
    let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
        target_size: 120,
        ..ScaleFreeConfig::default()
    });
    let mut engine = OverlayEngine::new(proto, seed);
    engine.run(&mut g, ticks, &NOOP);
    (g.freeze(), engine.deltas().to_vec())
}

fn build_gradient(seed: u64, ticks: u64) -> FrozenView {
    let mut g = generators::ring(48);
    let proto = GradientOverlay::new(GradientConfig::default());
    let mut engine = OverlayEngine::new(proto, seed);
    engine.run(&mut g, ticks, &NOOP);
    g.freeze()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, same initial graph → bit-identical overlay and
    /// bit-identical delta stream, for any seed.
    #[test]
    fn scale_free_construction_replays_bit_identically(seed in 0u64..1_000_000) {
        let (view_a, deltas_a) = build_scale_free(seed, 60);
        let (view_b, deltas_b) = build_scale_free(seed, 60);
        prop_assert_eq!(view_a, view_b);
        prop_assert_eq!(deltas_a, deltas_b);
    }

    /// The gradient protocol is a rewiring (not growing) protocol; its
    /// final edge set must replay exactly too.
    #[test]
    fn gradient_adaptation_replays_bit_identically(seed in 0u64..1_000_000) {
        prop_assert_eq!(build_gradient(seed, 80), build_gradient(seed, 80));
    }

    /// Interleaving engine ticks with an estimator run cannot perturb
    /// the estimator: a Random Tour over a pinned snapshot returns the
    /// same estimate and message count whether or not a construction is
    /// running "next to" it. This is the load-bearing guarantee behind
    /// `run_scenario` — query arms observe the overlay, never steer it —
    /// and it holds because overlay ticks draw only from
    /// `StreamDomain::Overlay` streams while the walk holds its own RNG.
    #[test]
    fn engine_ticks_do_not_perturb_estimator_walks(
        walk_seed in 0u64..100_000,
        engine_seed in 0u64..100_000,
    ) {
        let snapshot = {
            let mut rng = SmallRng::seed_from_u64(7);
            generators::balanced(200, 6, &mut rng).freeze()
        };
        let tour = |interleave: bool| {
            let mut g = generators::complete(5);
            let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
                target_size: 60,
                ..ScaleFreeConfig::default()
            });
            let mut engine = OverlayEngine::new(proto, engine_seed);
            if interleave {
                engine.run(&mut g, 10, &NOOP);
            }
            let mut rng = SmallRng::seed_from_u64(stream_seed(
                StreamDomain::ServiceQuery,
                walk_seed,
                0,
            ));
            let initiator = snapshot.random_node(&mut rng).expect("non-empty");
            let est = RandomTour::new()
                .estimate_with(&mut RunCtx::new(&snapshot, &mut rng), initiator)
                .expect("tour completes on a static balanced graph");
            if interleave {
                engine.run(&mut g, 10, &NOOP);
            }
            (est.value.to_bits(), est.messages)
        };
        prop_assert_eq!(tour(false), tour(true));
    }
}

/// The delta stream is replayable through the service's churn applier:
/// its net sum must equal the actual membership change of the build.
#[test]
fn delta_stream_accounts_for_every_join() {
    let mut g = generators::complete(5);
    let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
        target_size: 90,
        ..ScaleFreeConfig::default()
    });
    let mut engine = OverlayEngine::new(proto, 41);
    engine.run(&mut g, 40, &NOOP);
    let net: i64 = engine.deltas().iter().map(|d| d.delta).sum();
    assert_eq!(net, g.num_nodes() as i64 - 5);
    assert!(
        engine.deltas().windows(2).all(|w| w[0].run < w[1].run),
        "delta stream must be strictly ordered by tick"
    );
}

/// Determinism survives the engine being driven one tick at a time with
/// pauses (the service-driver pattern) rather than in one `run` burst.
#[test]
fn piecewise_ticking_matches_one_burst() {
    let build = |chunks: &[u64]| {
        let mut g: Graph = generators::complete(5);
        let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
            target_size: 100,
            ..ScaleFreeConfig::default()
        });
        let mut engine = OverlayEngine::new(proto, 13);
        for &c in chunks {
            engine.run(&mut g, c, &NOOP);
        }
        g.freeze()
    };
    assert_eq!(build(&[50]), build(&[1, 7, 30, 12]));
}

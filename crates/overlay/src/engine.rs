//! The synchronous-round executor driving a protocol over a live graph.

use census_graph::{Graph, NodeId};
use census_metrics::{Metric, Recorder};
use census_proto::OverlayEnvelope;
use census_sim::{DynamicNetwork, MembershipDelta};
use census_walk::stream::{stream_seed, StreamDomain};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::protocol::{OverlayCtx, OverlayProtocol};

/// What one engine tick did to the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickReport {
    /// The tick index that ran (0-based).
    pub tick: u64,
    /// Live nodes activated via `on_tick`.
    pub activations: u64,
    /// Messages from the previous tick delivered (dead addressees drop
    /// their mail silently and are not counted).
    pub delivered: u64,
    /// Nodes that joined.
    pub joins: u64,
    /// Nodes that departed.
    pub leaves: u64,
    /// Edges atomically rewired.
    pub rewires: u64,
    /// Total mutations — joins + leaves + individual edge changes (a
    /// rewire counts two). This is the number a service refreeze policy
    /// should treat as the tick's pending delta.
    pub mutations: u64,
}

/// Executes an [`OverlayProtocol`] in synchronous rounds over a graph it
/// does *not* own, so the same engine drives a standalone [`Graph`] (the
/// construction experiments) or a [`DynamicNetwork`] living inside a
/// running `census-service` (via [`OverlayEngine::driver`]).
///
/// # Determinism
///
/// Tick `t` draws exclusively from
/// `SmallRng::seed_from_u64(stream_seed(StreamDomain::Overlay, seed, t))`
/// — a fresh, counter-addressed stream per tick, in the dedicated
/// `Overlay` domain. Hook order within a tick is fixed (deliver in send
/// order, then `on_round`, then `on_tick` in dense node order), so the
/// entire construction — edge set, message trace, delta stream — is a
/// pure function of `(initial graph, protocol, seed)`. Because no other
/// domain ever derives an `Overlay`-tagged seed, interleaving engine
/// ticks with estimator queries cannot perturb any walk stream.
#[derive(Debug)]
pub struct OverlayEngine<P> {
    protocol: P,
    seed: u64,
    tick: u64,
    inbox: Vec<OverlayEnvelope>,
    deltas: Vec<MembershipDelta>,
}

impl<P: OverlayProtocol> OverlayEngine<P> {
    /// An engine at tick 0 with an empty mailbox.
    #[must_use]
    pub fn new(protocol: P, seed: u64) -> Self {
        Self {
            protocol,
            seed,
            tick: 0,
            inbox: Vec::new(),
            deltas: Vec::new(),
        }
    }

    /// The protocol being executed.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Ticks executed so far.
    #[must_use]
    pub fn ticks_run(&self) -> u64 {
        self.tick
    }

    /// Messages currently in flight (sent last tick, undelivered).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inbox.len()
    }

    /// The membership stream the construction produced so far: one
    /// [`MembershipDelta`] per tick with a non-zero net join−leave count,
    /// `run` = tick index. This is the same event format the
    /// `census-service` churn applier consumes, so a recorded
    /// construction can be replayed through `serve_rec` as ordinary
    /// churn.
    #[must_use]
    pub fn deltas(&self) -> &[MembershipDelta] {
        &self.deltas
    }

    /// Runs one synchronous round over `g`, charging `OverlayTicks` and
    /// `RewireOps` to the recorder.
    pub fn tick<Rec: Recorder + ?Sized>(&mut self, g: &mut Graph, recorder: &Rec) -> TickReport {
        let mut rng =
            SmallRng::seed_from_u64(stream_seed(StreamDomain::Overlay, self.seed, self.tick));
        let inbox = std::mem::take(&mut self.inbox);
        let mut outbox = Vec::new();
        let mut ctx = OverlayCtx::new(g, &mut rng, &mut outbox, self.tick);

        let mut delivered = 0u64;
        for env in inbox {
            if ctx.graph().is_alive(env.to) {
                self.protocol.on_message(env.to, env.message, &mut ctx);
                delivered += 1;
            }
        }

        self.protocol.on_round(&mut ctx);

        let nodes: Vec<NodeId> = ctx.graph().nodes().collect();
        let mut activations = 0u64;
        for v in nodes {
            if ctx.graph().is_alive(v) {
                self.protocol.on_tick(v, &mut ctx);
                activations += 1;
            }
        }

        let (joins, leaves, rewires, edge_ops) = ctx.counts();
        self.inbox = outbox;

        recorder.incr(Metric::OverlayTicks, activations);
        if rewires > 0 {
            recorder.incr(Metric::RewireOps, rewires);
        }
        let net = i64::try_from(joins).expect("join count fits")
            - i64::try_from(leaves).expect("leave count fits");
        if net != 0 {
            self.deltas.push(MembershipDelta {
                run: self.tick,
                delta: net,
            });
        }

        let report = TickReport {
            tick: self.tick,
            activations,
            delivered,
            joins,
            leaves,
            rewires,
            mutations: joins + leaves + edge_ops,
        };
        self.tick += 1;
        report
    }

    /// Runs `ticks` rounds, returning the total mutation count.
    pub fn run<Rec: Recorder + ?Sized>(
        &mut self,
        g: &mut Graph,
        ticks: u64,
        recorder: &Rec,
    ) -> u64 {
        (0..ticks).map(|_| self.tick(g, recorder).mutations).sum()
    }

    /// Adapts the engine into the step driver
    /// [`CensusService::serve_driven_rec`] expects: each service step
    /// runs one protocol tick against the live network and reports its
    /// mutation count, so the refreeze policy sees overlay self-assembly
    /// exactly as it sees churn.
    ///
    /// [`CensusService::serve_driven_rec`]: census_service::CensusService::serve_driven_rec
    pub fn driver<'a, Rec: Recorder + ?Sized>(
        &'a mut self,
        recorder: &'a Rec,
    ) -> impl FnMut(&mut DynamicNetwork) -> u64 + 'a {
        move |net| self.tick(net.graph_mut(), recorder).mutations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_metrics::{Registry, NOOP};
    use census_proto::OverlayMessage;

    /// A protocol that pings a fixed target every tick and counts
    /// deliveries — enough to pin down the engine's phase order and
    /// delivery semantics.
    struct Pinger {
        target: NodeId,
        got: u64,
        rounds: u64,
    }

    impl OverlayProtocol for Pinger {
        fn on_round(&mut self, _ctx: &mut OverlayCtx<'_>) {
            self.rounds += 1;
        }

        fn on_tick(&mut self, node: NodeId, ctx: &mut OverlayCtx<'_>) {
            if node != self.target {
                ctx.send(
                    self.target,
                    OverlayMessage::UtilityReply {
                        candidate: node,
                        utility: 0.0,
                    },
                );
            }
        }

        fn on_message(&mut self, to: NodeId, _m: OverlayMessage, _ctx: &mut OverlayCtx<'_>) {
            assert_eq!(to, self.target);
            self.got += 1;
        }
    }

    #[test]
    fn messages_arrive_exactly_one_tick_later() {
        let mut g = generators::ring(5);
        let target = g.nodes().next().expect("non-empty");
        let mut engine = OverlayEngine::new(
            Pinger {
                target,
                got: 0,
                rounds: 0,
            },
            7,
        );
        let r0 = engine.tick(&mut g, &NOOP);
        assert_eq!(r0.delivered, 0, "nothing in flight at tick 0");
        assert_eq!(r0.activations, 5);
        assert_eq!(engine.in_flight(), 4);
        let r1 = engine.tick(&mut g, &NOOP);
        assert_eq!(r1.delivered, 4, "tick 0's sends arrive at tick 1");
        assert_eq!(engine.protocol().got, 4);
        assert_eq!(engine.protocol().rounds, 2);
    }

    #[test]
    fn mail_to_departed_nodes_is_dropped() {
        /// Every survivor pings `victim` each tick; the victim departs in
        /// `on_round` of tick 1 — after that tick's delivery phase, so
        /// tick 0's pings still land but tick 1's drop at tick 2.
        struct PingVictim {
            victim: NodeId,
        }
        impl OverlayProtocol for PingVictim {
            fn on_round(&mut self, ctx: &mut OverlayCtx<'_>) {
                if ctx.tick() == 1 {
                    ctx.depart(self.victim);
                }
            }
            fn on_tick(&mut self, node: NodeId, ctx: &mut OverlayCtx<'_>) {
                if node != self.victim {
                    ctx.send(
                        self.victim,
                        OverlayMessage::UtilityReply {
                            candidate: node,
                            utility: 0.0,
                        },
                    );
                }
            }
            fn on_message(&mut self, to: NodeId, _m: OverlayMessage, _ctx: &mut OverlayCtx<'_>) {
                assert_eq!(to, self.victim, "only the victim is ever addressed");
            }
        }
        let mut g = generators::ring(6);
        let victim = g.nodes().next().expect("non-empty");
        let mut engine = OverlayEngine::new(PingVictim { victim }, 3);
        let r0 = engine.tick(&mut g, &NOOP);
        assert_eq!(r0.activations, 6);
        assert_eq!(engine.in_flight(), 5);
        let r1 = engine.tick(&mut g, &NOOP);
        // Delivery precedes the departure, so tick 0's pings all land.
        assert_eq!(r1.delivered, 5);
        assert_eq!(r1.leaves, 1);
        assert_eq!(g.num_nodes(), 5);
        let r2 = engine.tick(&mut g, &NOOP);
        // Tick 1's pings were addressed to the now-dead victim: all drop.
        assert_eq!(r2.delivered, 0);
        assert_eq!(engine.deltas(), &[MembershipDelta { run: 1, delta: -1 }]);
    }

    #[test]
    fn tick_metrics_are_charged() {
        let mut g = generators::ring(4);
        let target = g.nodes().next().expect("non-empty");
        let reg = Registry::new();
        let mut engine = OverlayEngine::new(
            Pinger {
                target,
                got: 0,
                rounds: 0,
            },
            9,
        );
        engine.run(&mut g, 3, &reg);
        assert_eq!(reg.counter(Metric::OverlayTicks), 12);
        assert_eq!(reg.counter(Metric::RewireOps), 0);
    }
}

//! Random-walk scale-free construction with exponent adaptation.
//!
//! Scholtes-style distributed preferential attachment (arXiv:1005.5628):
//! a joining node acquires each of its `m` edges by launching a
//! TTL-limited random walk from a random entry point and attaching where
//! the walk expires. Because a random walk's stationary distribution is
//! proportional to degree, the expired endpoint is a degree-biased draw —
//! preferential attachment emerges with no node knowing any global degree
//! information, and the resulting degree distribution is a power law.
//!
//! The *adaptation* layer steers the power-law exponent γ towards a
//! target: every `adapt_every` ticks the protocol fits the current
//! exponent (Hill estimator over the degree sequence), updates the walk
//! bias α by a temperature-scaled step proportional to the error, cools
//! the temperature, and lets a fraction of nodes rewire one edge through
//! an α-biased walk. Next-hop selection weighs neighbor `u` by
//! `deg(u)^α`, so α > 0 funnels walks into hubs (heavier tail, smaller
//! γ) and α < 0 flattens them (lighter tail, larger γ) — a
//! temperature-style controller in the simulated-annealing sense: big
//! exploratory steps early, refinement later.

use census_graph::{Graph, NodeId};
use census_proto::OverlayMessage;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::protocol::{OverlayCtx, OverlayProtocol};

/// Tuning knobs of [`ScaleFreeConstruction`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFreeConfig {
    /// Stop admitting joiners once the overlay reaches this many nodes.
    pub target_size: usize,
    /// Joiners admitted per tick while below the target size.
    pub joins_per_tick: usize,
    /// Attachment walks (= target edges) per joiner.
    pub edges_per_join: usize,
    /// Hop budget of every attachment and rewiring walk.
    pub walk_ttl: u32,
    /// The power-law exponent γ the adaptation steers towards.
    pub target_exponent: f64,
    /// Ticks between adaptation rounds; 0 disables adaptation (pure
    /// construction).
    pub adapt_every: u64,
    /// Per-node probability of launching a rewiring walk on an
    /// adaptation tick.
    pub rewire_fraction: f64,
    /// Gain of the α update (`α += gain · temperature · (γ̂ − γ*)`).
    pub gain: f64,
    /// Multiplicative temperature decay per adaptation round, in (0, 1].
    pub cooling: f64,
}

impl Default for ScaleFreeConfig {
    fn default() -> Self {
        Self {
            target_size: 1_000,
            joins_per_tick: 4,
            edges_per_join: 3,
            walk_ttl: 8,
            target_exponent: 2.5,
            adapt_every: 16,
            rewire_fraction: 0.05,
            gain: 0.5,
            cooling: 0.95,
        }
    }
}

/// The construction/adaptation state machine. See the module docs for
/// the protocol; all state here is the controller's (walk bias,
/// temperature, last fitted exponent) — per-walk state travels in the
/// messages themselves.
#[derive(Debug, Clone)]
pub struct ScaleFreeConstruction {
    config: ScaleFreeConfig,
    alpha: f64,
    temperature: f64,
    adapting: bool,
    last_exponent: Option<f64>,
}

impl ScaleFreeConstruction {
    /// A fresh controller: unbiased walks (α = 0), temperature 1.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (no edges per join, zero
    /// cooling, or a cooling factor above 1).
    #[must_use]
    pub fn new(config: ScaleFreeConfig) -> Self {
        assert!(config.edges_per_join > 0, "joiners need at least one edge");
        assert!(
            config.cooling > 0.0 && config.cooling <= 1.0,
            "cooling must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.rewire_fraction),
            "rewire fraction is a probability"
        );
        Self {
            config,
            alpha: 0.0,
            temperature: 1.0,
            adapting: false,
            last_exponent: None,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ScaleFreeConfig {
        &self.config
    }

    /// Current walk bias α (next hop weighted `deg^α`).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current controller temperature.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// The exponent fitted at the most recent adaptation round.
    #[must_use]
    pub fn last_exponent(&self) -> Option<f64> {
        self.last_exponent
    }

    fn forward(&self, ctx: &mut OverlayCtx<'_>, from: NodeId) -> Option<NodeId> {
        let alpha = self.alpha;
        let (g, rng) = ctx.split();
        biased_neighbor(g, from, alpha, rng)
    }
}

impl OverlayProtocol for ScaleFreeConstruction {
    fn on_round(&mut self, ctx: &mut OverlayCtx<'_>) {
        let tick = ctx.tick();
        self.adapting =
            self.config.adapt_every > 0 && tick > 0 && tick.is_multiple_of(self.config.adapt_every);
        if self.adapting {
            if let Some(gamma) = fitted_exponent(ctx.graph(), self.config.edges_per_join.max(2)) {
                let err = gamma - self.config.target_exponent;
                self.alpha =
                    (self.alpha + self.config.gain * self.temperature * err).clamp(-2.0, 4.0);
                self.temperature *= self.config.cooling;
                self.last_exponent = Some(gamma);
            }
        }

        // Admit joiners while below target, one attachment walk per
        // wanted edge, each from its own random entry point.
        for _ in 0..self.config.joins_per_tick {
            if ctx.graph().num_nodes() >= self.config.target_size {
                break;
            }
            let joiner = ctx.join();
            for _ in 0..self.config.edges_per_join {
                // Entry point: any live node other than the joiner.
                let entry = (0..8).find_map(|_| {
                    ctx.random_node()
                        .filter(|&v| v != joiner && ctx.graph().degree(v) > 0)
                });
                match entry {
                    Some(entry) => ctx.send(
                        entry,
                        OverlayMessage::JoinWalk {
                            joiner,
                            ttl: self.config.walk_ttl,
                        },
                    ),
                    // Bootstrap: nothing to walk on yet — attach directly
                    // to any other node so the seed component forms.
                    None => {
                        if let Some(v) = ctx.random_node().filter(|&v| v != joiner) {
                            let _ = ctx.connect(joiner, v);
                        }
                    }
                }
            }
        }
    }

    fn on_tick(&mut self, node: NodeId, ctx: &mut OverlayCtx<'_>) {
        if !self.adapting || ctx.graph().degree(node) < 2 {
            return;
        }
        if !ctx.chance(self.config.rewire_fraction) {
            return;
        }
        let Some(drop) = ctx.random_neighbor(node) else {
            return;
        };
        // Never strand the dropped neighbor.
        if ctx.graph().degree(drop) < 2 {
            return;
        }
        let Some(first) = ctx.random_neighbor(node) else {
            return;
        };
        ctx.send(
            first,
            OverlayMessage::RewireWalk {
                origin: node,
                drop,
                ttl: self.config.walk_ttl,
            },
        );
    }

    fn on_message(&mut self, to: NodeId, message: OverlayMessage, ctx: &mut OverlayCtx<'_>) {
        match message {
            OverlayMessage::JoinWalk { joiner, ttl } => {
                if !ctx.graph().is_alive(joiner) {
                    return;
                }
                if ttl == 0 || ctx.graph().degree(to) == 0 {
                    let _ = ctx.connect(joiner, to);
                } else {
                    match self.forward(ctx, to) {
                        Some(next) => ctx.send(
                            next,
                            OverlayMessage::JoinWalk {
                                joiner,
                                ttl: ttl - 1,
                            },
                        ),
                        None => {
                            let _ = ctx.connect(joiner, to);
                        }
                    }
                }
            }
            OverlayMessage::RewireWalk { origin, drop, ttl } => {
                if ttl == 0 {
                    // Still never strand the dropped end (its degree may
                    // have changed while the walk was in flight).
                    if ctx.graph().is_alive(drop) && ctx.graph().degree(drop) > 1 {
                        let _ = ctx.rewire(origin, drop, to);
                    }
                } else if let Some(next) = self.forward(ctx, to) {
                    ctx.send(
                        next,
                        OverlayMessage::RewireWalk {
                            origin,
                            drop,
                            ttl: ttl - 1,
                        },
                    );
                }
            }
            // Gradient traffic is not ours.
            OverlayMessage::UtilityProbe { .. } | OverlayMessage::UtilityReply { .. } => {}
        }
    }
}

/// Degree-power-biased next hop: neighbor `u` of `v` with probability
/// proportional to `deg(u)^alpha`. `alpha = 0` is the uniform simple
/// random walk.
///
/// # Panics
///
/// Panics if `v` is not alive.
pub fn biased_neighbor(g: &Graph, v: NodeId, alpha: f64, rng: &mut SmallRng) -> Option<NodeId> {
    let neighbors = g.neighbors(v);
    if neighbors.is_empty() {
        return None;
    }
    if alpha == 0.0 {
        return Some(neighbors[rng.random_range(0..neighbors.len())]);
    }
    let weights: Vec<f64> = neighbors
        .iter()
        .map(|&u| (g.degree(u) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return Some(neighbors[rng.random_range(0..neighbors.len())]);
    }
    let mut x = rng.random::<f64>() * total;
    for (&u, &w) in neighbors.iter().zip(&weights) {
        x -= w;
        if x <= 0.0 {
            return Some(u);
        }
    }
    Some(*neighbors.last().expect("non-empty neighbor list"))
}

/// Hill estimator of the power-law exponent over the degree sequence:
/// `γ̂ = 1 + n / Σ ln(d_i / (d_min − ½))` over nodes with degree ≥
/// `d_min` (the continuous MLE with the standard half-integer
/// correction). Returns `None` when fewer than two nodes qualify or the
/// qualifying degrees are all equal to `d_min` (the estimator diverges).
#[must_use]
pub fn fitted_exponent(g: &Graph, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let shift = d_min as f64 - 0.5;
    let mut n = 0u64;
    let mut acc = 0.0f64;
    for v in g.nodes() {
        let d = g.degree(v);
        if d >= d_min {
            n += 1;
            acc += (d as f64 / shift).ln();
        }
    }
    (n >= 2 && acc > 0.0).then(|| 1.0 + n as f64 / acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_metrics::NOOP;
    use rand::SeedableRng;

    use crate::engine::OverlayEngine;

    fn seed_graph() -> Graph {
        generators::complete(4)
    }

    #[test]
    fn construction_reaches_target_size() {
        let config = ScaleFreeConfig {
            target_size: 300,
            adapt_every: 0,
            ..ScaleFreeConfig::default()
        };
        let mut g = seed_graph();
        let mut engine = OverlayEngine::new(ScaleFreeConstruction::new(config), 11);
        engine.run(&mut g, 200, &NOOP);
        assert_eq!(g.num_nodes(), 300);
        // Joins show up in the emitted membership stream.
        let joined: i64 = engine.deltas().iter().map(|d| d.delta).sum();
        assert_eq!(joined, 300 - 4);
        // Every settled node ended up attached (walks may dedup onto the
        // same endpoint, so degree can be below m, but never zero once
        // all walks have landed).
        let extra = engine.in_flight();
        let isolated = g.nodes().filter(|&v| g.degree(v) == 0).count();
        assert!(
            isolated <= extra,
            "{isolated} isolated nodes but only {extra} walks in flight"
        );
    }

    #[test]
    fn walk_attachment_prefers_high_degree() {
        // Star + fringe: walks from anywhere collapse into the hub, so
        // the hub must collect far more attachments than a uniform draw
        // would give it.
        let config = ScaleFreeConfig {
            target_size: 400,
            joins_per_tick: 2,
            edges_per_join: 1,
            adapt_every: 0,
            ..ScaleFreeConfig::default()
        };
        let mut g = generators::star(21);
        let hub = g
            .nodes()
            .max_by_key(|&v| g.degree(v))
            .expect("star has a hub");
        let before = g.degree(hub);
        let mut engine = OverlayEngine::new(ScaleFreeConstruction::new(config), 5);
        engine.run(&mut g, 400, &NOOP);
        let gained = g.degree(hub) - before;
        let joiners = g.num_nodes() - 21;
        // Uniform attachment would hand the hub ~ joiners/n of the new
        // edges; preferential attachment concentrates a large multiple.
        assert!(
            gained * 5 > joiners / 2,
            "hub gained {gained} of {joiners} joins"
        );
    }

    #[test]
    fn hill_estimator_recovers_known_exponents() {
        // Degrees drawn from a discrete power law with gamma = 2.5 via
        // inverse transform; the estimator should land near it.
        let mut rng = SmallRng::seed_from_u64(42);
        let gamma = 2.5f64;
        let mut g = Graph::new();
        let ids = g.add_nodes(4000);
        // Build a degree sequence, then realize it approximately with a
        // configuration-style pass (pair random stubs; collisions drop).
        let mut stubs = Vec::new();
        for (i, &v) in ids.iter().enumerate() {
            let u: f64 = rng.random::<f64>().max(1e-12);
            let d = (2.0 * u.powf(-1.0 / (gamma - 1.0))).min(200.0) as usize;
            let _ = i;
            for _ in 0..d {
                stubs.push(v);
            }
        }
        // Deterministic shuffle by index draws.
        for i in (1..stubs.len()).rev() {
            let j = rng.random_range(0..=i);
            stubs.swap(i, j);
        }
        for pair in stubs.chunks(2) {
            if let [a, b] = *pair {
                if a != b && !g.has_edge(a, b) {
                    let _ = g.add_edge(a, b);
                }
            }
        }
        let fitted = fitted_exponent(&g, 2).expect("enough tail mass");
        assert!(
            (fitted - gamma).abs() < 0.4,
            "fitted {fitted} too far from {gamma}"
        );
    }

    #[test]
    fn adaptation_moves_alpha_and_cools() {
        let config = ScaleFreeConfig {
            target_size: 500,
            adapt_every: 8,
            ..ScaleFreeConfig::default()
        };
        let mut g = seed_graph();
        let mut engine = OverlayEngine::new(ScaleFreeConstruction::new(config), 23);
        engine.run(&mut g, 160, &NOOP);
        let proto = engine.protocol();
        assert!(proto.last_exponent().is_some(), "adaptation rounds ran");
        assert!(proto.temperature() < 1.0, "temperature cooled");
    }

    #[test]
    fn biased_walk_degenerates_gracefully() {
        let g = generators::star(5);
        let hub = g.nodes().max_by_key(|&v| g.degree(v)).expect("hub");
        let leaf = g.nodes().find(|&v| v != hub).expect("leaf");
        let mut rng = SmallRng::seed_from_u64(1);
        // From a leaf the only neighbor is the hub, at any bias.
        for alpha in [-2.0, 0.0, 3.0] {
            assert_eq!(biased_neighbor(&g, leaf, alpha, &mut rng), Some(hub));
        }
        // Isolated node: no hop.
        let mut g2 = Graph::new();
        let v = g2.add_node();
        assert_eq!(biased_neighbor(&g2, v, 1.0, &mut rng), None);
    }
}

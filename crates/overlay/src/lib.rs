//! Self-constructing, self-adapting overlays for overlay-census.
//!
//! The crates below this one treat the overlay graph as *given*: the
//! estimators of `census-core` walk it, `census-sim` churns it with
//! scripted membership events, `census-service` refreezes snapshots of
//! it. This crate closes the loop by making the overlay build and tune
//! *itself* through the same message-passing, random-walk machinery the
//! estimators use — and then asks the census question the paper cares
//! about: what happens to peer counting while the topology underneath is
//! still moving?
//!
//! # Pieces
//!
//! * [`OverlayProtocol`] — a deterministic per-node state machine
//!   (`on_round` / `on_tick` / `on_message`) over [`OverlayMessage`]
//!   envelopes, executed in synchronous rounds by [`OverlayEngine`].
//!   All randomness flows through [`OverlayCtx`] from dedicated
//!   [`StreamDomain::Overlay`] streams, so a construction is a pure
//!   function of `(initial graph, protocol, seed)` and provably cannot
//!   perturb estimator walk streams.
//! * [`ScaleFreeConstruction`] — random-walk preferential attachment
//!   (Scholtes, arXiv:1005.5628) with temperature-style adaptation of
//!   the walk bias towards a target power-law exponent.
//! * [`GradientOverlay`] — utility-gradient neighbor selection
//!   (Terelius et al., arXiv:1103.5678): local probe/swap search until
//!   every node has a strictly-higher-utility neighbor.
//! * [`run_scenario`] — census-under-adaptation workloads interleaving
//!   protocol ticks with Random Tour queries and λ₂ checkpoints, naive
//!   (stale snapshot) vs refreeze-coupled arms.
//! * [`OverlayEngine::driver`] — adapts an engine into the step driver
//!   `census_service::CensusService::serve_driven_rec` consumes, so a
//!   live service refreezes over an overlay assembling itself.
//!
//! [`StreamDomain::Overlay`]: census_walk::stream::StreamDomain
//! [`OverlayMessage`]: census_proto::OverlayMessage

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod gradient;
mod protocol;
mod scale_free;
mod scenario;

pub use engine::{OverlayEngine, TickReport};
pub use gradient::{monotone_fraction, node_utility, GradientConfig, GradientOverlay};
pub use protocol::{OverlayCtx, OverlayProtocol};
pub use scale_free::{biased_neighbor, fitted_exponent, ScaleFreeConfig, ScaleFreeConstruction};
pub use scenario::{run_scenario, Checkpoint, ScenarioConfig};

//! The per-node protocol state machine and its execution context.

use census_graph::{Graph, NodeId};
use census_proto::{OverlayEnvelope, OverlayMessage};
use rand::rngs::SmallRng;
use rand::Rng;

/// Everything a protocol hook may touch during one tick: the live graph,
/// the tick's private RNG stream, and the outbox of messages to deliver
/// next tick.
///
/// Mutations go through the context's methods — [`OverlayCtx::join`],
/// [`OverlayCtx::connect`], [`OverlayCtx::rewire`], … — so the engine can
/// count them: the tallies feed the service's refreeze policy (pending
/// delta), the `RewireOps` metric, and the [`MembershipDelta`] stream
/// the engine emits.
///
/// [`MembershipDelta`]: census_sim::MembershipDelta
#[derive(Debug)]
pub struct OverlayCtx<'a> {
    graph: &'a mut Graph,
    rng: &'a mut SmallRng,
    outbox: &'a mut Vec<OverlayEnvelope>,
    tick: u64,
    joins: u64,
    leaves: u64,
    rewires: u64,
    edge_ops: u64,
}

impl<'a> OverlayCtx<'a> {
    pub(crate) fn new(
        graph: &'a mut Graph,
        rng: &'a mut SmallRng,
        outbox: &'a mut Vec<OverlayEnvelope>,
        tick: u64,
    ) -> Self {
        Self {
            graph,
            rng,
            outbox,
            tick,
            joins: 0,
            leaves: 0,
            rewires: 0,
            edge_ops: 0,
        }
    }

    /// Read access to the live overlay.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The engine tick currently executing (0-based).
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The tick's private RNG stream
    /// (`stream_seed(StreamDomain::Overlay, seed, tick)`), shared by
    /// every hook invocation of the tick in a fixed order — which is what
    /// makes a whole construction run a pure function of one seed.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Simultaneous graph + RNG access, for samplers that weigh graph
    /// state while drawing (e.g. degree-biased next-hop selection).
    pub fn split(&mut self) -> (&Graph, &mut SmallRng) {
        (&*self.graph, self.rng)
    }

    /// Draws `true` with probability `p` from the tick stream.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.random::<f64>() < p
    }

    /// A uniformly random live node, if any.
    pub fn random_node(&mut self) -> Option<NodeId> {
        self.graph.random_node(self.rng)
    }

    /// A uniformly random neighbor of `v`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not alive.
    pub fn random_neighbor(&mut self, v: NodeId) -> Option<NodeId> {
        self.graph.random_neighbor(v, self.rng)
    }

    /// Queues a message for delivery at the start of the next tick.
    /// Messages to nodes dead at delivery time are dropped (the
    /// departing-node-takes-the-message semantics of the estimator sim).
    pub fn send(&mut self, to: NodeId, message: OverlayMessage) {
        self.outbox.push(OverlayEnvelope { to, message });
    }

    /// A new node joins the overlay with no edges; the protocol wires it
    /// up through walks. Counted as one membership mutation.
    pub fn join(&mut self) -> NodeId {
        self.joins += 1;
        self.graph.add_node()
    }

    /// `node` departs, taking its edges. Counted as one membership
    /// mutation. Returns false if it was already gone.
    pub fn depart(&mut self, node: NodeId) -> bool {
        if self.graph.remove_node(node).is_ok() {
            self.leaves += 1;
            true
        } else {
            false
        }
    }

    /// Adds the edge `(a, b)` if both ends are alive, distinct, and not
    /// already adjacent. Returns whether an edge was added; a false
    /// return is a benign no-op, not an error (walk endpoints routinely
    /// land on existing neighbors).
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || !self.graph.is_alive(a) || !self.graph.is_alive(b) || self.graph.has_edge(a, b)
        {
            return false;
        }
        self.graph
            .add_edge(a, b)
            .expect("endpoints checked alive, distinct, and fresh");
        self.edge_ops += 1;
        true
    }

    /// Atomically replaces the edge `(origin, drop)` with
    /// `(origin, fresh)`: the old edge is removed only if the new one can
    /// be added, so the overlay never passes through a state where the
    /// rewiring node lost an edge and gained nothing. Returns whether the
    /// swap happened; counted as one rewire (two edge mutations).
    pub fn rewire(&mut self, origin: NodeId, drop: NodeId, fresh: NodeId) -> bool {
        if fresh == origin
            || fresh == drop
            || !self.graph.is_alive(origin)
            || !self.graph.is_alive(fresh)
            || !self.graph.has_edge(origin, drop)
            || self.graph.has_edge(origin, fresh)
        {
            return false;
        }
        self.graph
            .remove_edge(origin, drop)
            .expect("edge existence checked");
        self.graph
            .add_edge(origin, fresh)
            .expect("endpoints checked alive, distinct, and fresh");
        self.rewires += 1;
        self.edge_ops += 2;
        true
    }

    /// The tick's mutation tallies `(joins, leaves, rewires, edge_ops)`.
    pub(crate) fn counts(&self) -> (u64, u64, u64, u64) {
        (self.joins, self.leaves, self.rewires, self.edge_ops)
    }
}

/// A self-constructing overlay protocol: a deterministic per-node state
/// machine executed in synchronous rounds by
/// [`OverlayEngine`](crate::OverlayEngine).
///
/// Each tick runs three phases in a fixed order, all drawing from the
/// tick's private [`StreamDomain::Overlay`] stream:
///
/// 1. **deliver** — every message sent last tick arrives via
///    [`OverlayProtocol::on_message`] (messages to dead nodes are
///    dropped);
/// 2. **round** — the global [`OverlayProtocol::on_round`] hook runs
///    once (joins, parameter adaptation — anything not tied to one
///    node);
/// 3. **activate** — [`OverlayProtocol::on_tick`] runs once per live
///    node, in dense id order.
///
/// Protocols never hold their own RNG: all randomness flows through the
/// context, which is what keeps construction runs bit-identical across
/// replays and provably decorrelated from estimator walk streams.
///
/// [`StreamDomain::Overlay`]: census_walk::stream::StreamDomain
pub trait OverlayProtocol {
    /// Global per-tick hook, run after message delivery and before node
    /// activations. Default: nothing.
    fn on_round(&mut self, ctx: &mut OverlayCtx<'_>) {
        let _ = ctx;
    }

    /// Per-node activation: `node` gets a chance to act (launch a probe,
    /// start a rewire walk, …).
    fn on_tick(&mut self, node: NodeId, ctx: &mut OverlayCtx<'_>);

    /// Delivers a message sent at the previous tick to `to`.
    fn on_message(&mut self, to: NodeId, message: OverlayMessage, ctx: &mut OverlayCtx<'_>);
}

//! Census-under-adaptation workloads: estimator accuracy while the
//! overlay is still wiring itself.
//!
//! The runner interleaves protocol ticks with Random Tour size queries
//! and tracks the mixing structure (the Laplacian spectral gap λ₂) at
//! configurable checkpoints. Two query arms run at every checkpoint:
//!
//! * **naive** — tours run over the snapshot frozen *before* the
//!   construction started (a service that never refreezes while the
//!   overlay adapts under it);
//! * **coupled** — tours run over a snapshot refrozen at the checkpoint
//!   (a service whose refreeze policy is driven by the engine's mutation
//!   counts, as [`OverlayEngine::driver`] wires up).
//!
//! The spread between the arms is the headline result of the
//! `overlay-convergence` experiment: under heavy adaptation the naive
//! arm's relative error grows with the overlay while the coupled arm
//! keeps tracking the truth.
//!
//! [`OverlayEngine::driver`]: crate::OverlayEngine::driver

use census_core::{RandomTour, SizeEstimator};
use census_graph::spectral::spectral_gap_with;
use census_graph::{FrozenView, Graph};
use census_metrics::{GaugeMetric, Recorder, RunCtx};
use census_walk::stream::{stream_seed, StreamDomain};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::OverlayEngine;
use crate::protocol::OverlayProtocol;

/// Shape of an adaptation workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Protocol ticks to run in total.
    pub ticks: u64,
    /// Ticks between checkpoints (the final tick always checkpoints).
    pub checkpoint_every: u64,
    /// Random Tour queries averaged per arm per checkpoint.
    pub tours_per_checkpoint: usize,
    /// Power-iteration budget of each λ₂ evaluation.
    pub spectral_iters: usize,
    /// Convergence tolerance of each λ₂ evaluation.
    pub spectral_tol: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            ticks: 200,
            checkpoint_every: 25,
            tours_per_checkpoint: 16,
            spectral_iters: 2_000,
            spectral_tol: 1e-6,
        }
    }
}

/// One checkpoint of an adaptation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Ticks completed when the checkpoint was taken.
    pub tick: u64,
    /// Live nodes at the checkpoint — the ground truth both arms are
    /// trying to estimate.
    pub truth: usize,
    /// Edges at the checkpoint.
    pub edges: usize,
    /// λ₂ of the overlay at the checkpoint (0 when disconnected — see
    /// [`spectral_gap_with`]'s contract).
    pub lambda2: f64,
    /// Whether the overlay was one component at the checkpoint.
    pub connected: bool,
    /// Mean Random Tour estimate over the *stale* epoch-0 snapshot.
    pub naive_estimate: f64,
    /// Mean Random Tour estimate over a snapshot refrozen here.
    pub coupled_estimate: f64,
}

impl Checkpoint {
    /// Relative error of the naive arm against the checkpoint truth.
    #[must_use]
    pub fn naive_rel_error(&self) -> f64 {
        rel_error(self.naive_estimate, self.truth)
    }

    /// Relative error of the coupled arm against the checkpoint truth.
    #[must_use]
    pub fn coupled_rel_error(&self) -> f64 {
        rel_error(self.coupled_estimate, self.truth)
    }
}

fn rel_error(estimate: f64, truth: usize) -> f64 {
    (estimate - truth as f64).abs() / truth as f64
}

/// Runs `engine` for [`ScenarioConfig::ticks`] rounds over `graph`,
/// checkpointing the λ₂ trajectory and both query arms along the way.
///
/// # Determinism
///
/// Construction randomness comes from the engine's own
/// [`StreamDomain::Overlay`] streams; checkpoint queries draw from
/// `stream_seed(StreamDomain::ServiceQuery, query_seed, checkpoint_index)`
/// — so the two are decorrelated by construction, and running the
/// queries (or not) cannot change what the overlay builds. The gauge
/// [`GaugeMetric::Lambda2Checkpoints`] tracks how many checkpoints have
/// been recorded.
///
/// # Panics
///
/// Panics if `checkpoint_every` is 0 or the graph has fewer than two
/// nodes (λ₂ is undefined).
pub fn run_scenario<P: OverlayProtocol, Rec: Recorder + ?Sized>(
    engine: &mut OverlayEngine<P>,
    graph: &mut Graph,
    config: &ScenarioConfig,
    query_seed: u64,
    recorder: &Rec,
) -> Vec<Checkpoint> {
    assert!(
        config.checkpoint_every > 0,
        "checkpoint interval must be positive"
    );
    let stale = graph.freeze();
    let mut checkpoints = Vec::new();
    for t in 0..config.ticks {
        engine.tick(graph, recorder);
        let done = t + 1 == config.ticks;
        if (t + 1) % config.checkpoint_every != 0 && !done {
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(stream_seed(
            StreamDomain::ServiceQuery,
            query_seed,
            checkpoints.len() as u64,
        ));
        let gap = spectral_gap_with(graph, config.spectral_iters, config.spectral_tol);
        let fresh = graph.freeze();
        let naive = mean_tour_estimate(&stale, config.tours_per_checkpoint, &mut rng);
        let coupled = mean_tour_estimate(&fresh, config.tours_per_checkpoint, &mut rng);
        checkpoints.push(Checkpoint {
            tick: t + 1,
            truth: graph.num_nodes(),
            edges: graph.num_edges(),
            lambda2: gap.lambda2,
            connected: gap.connected,
            naive_estimate: naive,
            coupled_estimate: coupled,
        });
        recorder.set_gauge(GaugeMetric::Lambda2Checkpoints, checkpoints.len() as u64);
    }
    checkpoints
}

/// Mean of `tours` Random Tour estimates over `view`, each initiated at
/// a uniformly random live node. Failed tours (step-budget exhaustion on
/// a pathological view) are skipped; returns NaN if every tour failed.
fn mean_tour_estimate(view: &FrozenView, tours: usize, rng: &mut SmallRng) -> f64 {
    let estimator = RandomTour::new();
    let mut acc = 0.0;
    let mut ok = 0usize;
    for _ in 0..tours {
        let Some(initiator) = view.random_node(rng) else {
            continue;
        };
        if let Ok(est) = estimator.estimate_with(&mut RunCtx::new(view, rng), initiator) {
            acc += est.value;
            ok += 1;
        }
    }
    if ok == 0 {
        f64::NAN
    } else {
        acc / ok as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_metrics::{Registry, NOOP};

    use crate::scale_free::{ScaleFreeConfig, ScaleFreeConstruction};

    #[test]
    fn checkpoints_track_growth_and_gap() {
        let mut g = generators::complete(8);
        let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
            target_size: 150,
            adapt_every: 0,
            ..ScaleFreeConfig::default()
        });
        let mut engine = OverlayEngine::new(proto, 31);
        let config = ScenarioConfig {
            ticks: 80,
            checkpoint_every: 20,
            tours_per_checkpoint: 8,
            spectral_iters: 500,
            spectral_tol: 1e-4,
        };
        let reg = Registry::new();
        let cps = run_scenario(&mut engine, &mut g, &config, 17, &reg);
        assert_eq!(cps.len(), 4);
        assert_eq!(cps.last().expect("non-empty").truth, 150);
        assert!(cps.windows(2).all(|w| w[0].truth <= w[1].truth));
        assert!(cps
            .iter()
            .all(|c| c.lambda2.is_finite() && c.lambda2 >= 0.0));
        assert_eq!(reg.gauge(GaugeMetric::Lambda2Checkpoints), 4);
    }

    #[test]
    fn naive_arm_goes_stale_while_coupled_tracks_truth() {
        let mut g = generators::complete(8);
        let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
            target_size: 200,
            adapt_every: 0,
            ..ScaleFreeConfig::default()
        });
        let mut engine = OverlayEngine::new(proto, 5);
        let config = ScenarioConfig {
            ticks: 100,
            checkpoint_every: 100,
            tours_per_checkpoint: 32,
            spectral_iters: 200,
            spectral_tol: 1e-3,
        };
        let cps = run_scenario(&mut engine, &mut g, &config, 3, &NOOP);
        let last = cps.last().expect("final checkpoint");
        assert_eq!(last.truth, 200);
        // The stale arm still sees the 8-node seed: its relative error is
        // near 1. The coupled arm estimates the live 200-node overlay.
        assert!(
            last.naive_rel_error() > 0.7,
            "naive arm unexpectedly accurate: {:?}",
            last
        );
        assert!(
            last.coupled_rel_error() < last.naive_rel_error(),
            "coupling did not help: {:?}",
            last
        );
    }

    #[test]
    fn queries_do_not_perturb_construction() {
        // Same engine seed, radically different query load — identical
        // final overlay.
        let build = |tours: usize| {
            let mut g = generators::complete(6);
            let proto = ScaleFreeConstruction::new(ScaleFreeConfig {
                target_size: 80,
                ..ScaleFreeConfig::default()
            });
            let mut engine = OverlayEngine::new(proto, 99);
            let config = ScenarioConfig {
                ticks: 60,
                checkpoint_every: 10,
                tours_per_checkpoint: tours,
                spectral_iters: 100,
                spectral_tol: 1e-3,
            };
            run_scenario(&mut engine, &mut g, &config, 1, &NOOP);
            g.freeze()
        };
        assert_eq!(build(1), build(40));
    }
}

//! Utility-gradient topology construction.
//!
//! Each node carries a fixed scalar *utility* (here hash-derived from the
//! node id, standing in for capacity, uptime, or any application metric).
//! A gradient overlay (Terelius et al., arXiv:1103.5678) wires nodes so
//! that every node keeps neighbors whose utilities bracket its own as
//! tightly as possible: greedy routing "up the gradient" then always
//! makes progress, because every non-maximal node has a strictly
//! higher-utility neighbor.
//!
//! The protocol is pure local search. Nodes discover candidates through
//! TTL-limited [`UtilityProbe`] walks; walk endpoints answer with a
//! [`UtilityReply`]. A node receiving a candidate compares it against its
//! current worst neighbor under a lexicographic preference — any
//! higher-utility neighbor beats any lower-utility one, and within a
//! class a smaller utility gap wins — and atomically swaps the worst edge
//! for the candidate when the candidate is strictly better, with guards
//! that never strand the dropped neighbor or break its own last upward
//! link.
//!
//! [`UtilityProbe`]: census_proto::OverlayMessage::UtilityProbe
//! [`UtilityReply`]: census_proto::OverlayMessage::UtilityReply

use census_graph::{Graph, NodeId};
use census_proto::OverlayMessage;
use census_walk::stream::splitmix64;

use crate::protocol::{OverlayCtx, OverlayProtocol};

/// Tuning knobs of [`GradientOverlay`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientConfig {
    /// Seed of the hash deriving per-node utilities; two runs with the
    /// same seed agree on every node's utility.
    pub utility_seed: u64,
    /// Per-node probability of launching a discovery probe each tick.
    pub probe_rate: f64,
    /// Hop budget of each discovery probe.
    pub probe_ttl: u32,
}

impl Default for GradientConfig {
    fn default() -> Self {
        Self {
            utility_seed: 0x0055_5449_4C49_5459,
            probe_rate: 0.25,
            probe_ttl: 6,
        }
    }
}

/// The gradient local-search state machine. Stateless beyond its
/// configuration — candidate knowledge travels in the messages, and the
/// topology *is* the state.
#[derive(Debug, Clone)]
pub struct GradientOverlay {
    config: GradientConfig,
}

impl GradientOverlay {
    /// A gradient protocol with the given knobs.
    ///
    /// # Panics
    ///
    /// Panics if `probe_rate` is not a probability.
    #[must_use]
    pub fn new(config: GradientConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.probe_rate),
            "probe rate is a probability"
        );
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &GradientConfig {
        &self.config
    }

    /// The fixed utility of `v` under this protocol's seed: a
    /// deterministic hash of the node id, uniform in `[0, 1)`.
    #[must_use]
    pub fn utility(&self, v: NodeId) -> f64 {
        node_utility(self.config.utility_seed, v)
    }

    /// Preference key of neighbor/candidate `other` from `me`'s
    /// viewpoint: lexicographically smaller is better. Above-gradient
    /// peers (class 0) always beat below-gradient peers (class 1); within
    /// a class, the smaller utility gap wins. Ties in utility count as
    /// "below" so a node never treats an equal-utility peer as upward
    /// progress.
    fn preference(&self, me: f64, other: f64) -> (u8, f64) {
        if other > me {
            (0, other - me)
        } else {
            (1, me - other)
        }
    }

    /// Whether `v` has at least one strictly-higher-utility neighbor
    /// besides `excluding`.
    fn has_upward_link_except(&self, g: &Graph, v: NodeId, excluding: NodeId) -> bool {
        let uv = self.utility(v);
        g.neighbors(v)
            .iter()
            .any(|&n| n != excluding && self.utility(n) > uv)
    }

    /// Whether `origin` may drop its edge to `w` without damage: never
    /// strand a degree-1 neighbor, and never take a below-gradient
    /// neighbor's only upward link — gradient monotonicity outranks
    /// local preference.
    fn droppable(&self, g: &Graph, origin: NodeId, w: NodeId) -> bool {
        g.degree(w) >= 2
            && (self.utility(w) >= self.utility(origin)
                || self.has_upward_link_except(g, w, origin))
    }

    /// Considers adopting `candidate` into `origin`'s neighborhood.
    /// Preferred path: atomically swap out the least preferred
    /// *droppable* neighbor, iff the candidate strictly beats it. When no
    /// neighbor may be dropped (every one is either someone's last edge
    /// or a dependant's last upward link), the overlay may still *grow*
    /// an edge — but only to acquire an upward link `origin` entirely
    /// lacks, the one case where refusing would wedge convergence to the
    /// monotone-gradient property.
    fn consider(&self, origin: NodeId, candidate: NodeId, ctx: &mut OverlayCtx<'_>) {
        enum Action {
            Swap(NodeId),
            Grow,
            Keep,
        }
        let action = {
            let g = ctx.graph();
            if !g.is_alive(origin)
                || !g.is_alive(candidate)
                || candidate == origin
                || g.has_edge(origin, candidate)
            {
                return;
            }
            let mu = self.utility(origin);
            let cand_key = self.preference(mu, self.utility(candidate));
            let worst_droppable = g
                .neighbors(origin)
                .iter()
                .copied()
                .filter(|&w| self.droppable(g, origin, w))
                .max_by(|&a, &b| {
                    let ka = self.preference(mu, self.utility(a));
                    let kb = self.preference(mu, self.utility(b));
                    ka.partial_cmp(&kb).expect("finite utilities")
                });
            match worst_droppable {
                Some(w) if cand_key < self.preference(mu, self.utility(w)) => Action::Swap(w),
                Some(_) => Action::Keep,
                None => {
                    let has_upward = g.neighbors(origin).iter().any(|&n| self.utility(n) > mu);
                    if cand_key.0 == 0 && !has_upward {
                        Action::Grow
                    } else {
                        Action::Keep
                    }
                }
            }
        };
        match action {
            Action::Swap(w) => {
                let _ = ctx.rewire(origin, w, candidate);
            }
            Action::Grow => {
                let _ = ctx.connect(origin, candidate);
            }
            Action::Keep => {}
        }
    }
}

impl OverlayProtocol for GradientOverlay {
    fn on_tick(&mut self, node: NodeId, ctx: &mut OverlayCtx<'_>) {
        if !ctx.chance(self.config.probe_rate) {
            return;
        }
        // Probes enter at a uniformly random peer — the peer-sampling
        // service of the gradient-overlay literature — rather than in the
        // origin's own neighborhood. A converged gradient topology is
        // stratified by utility, so a walk started next door would stay
        // inside the origin's own stratum and never discover the thin
        // top slice; a uniform entry point reaches every stratum with
        // equal probability.
        let Some(entry) = ctx.random_node().filter(|&v| v != node) else {
            return;
        };
        ctx.send(
            entry,
            OverlayMessage::UtilityProbe {
                origin: node,
                origin_utility: self.utility(node),
                best: node,
                best_utility: self.utility(node),
                ttl: self.config.probe_ttl,
            },
        );
    }

    fn on_message(&mut self, to: NodeId, message: OverlayMessage, ctx: &mut OverlayCtx<'_>) {
        match message {
            OverlayMessage::UtilityProbe {
                origin,
                origin_utility,
                best,
                best_utility,
                ttl,
            } => {
                // On-walk aggregation: the visited node offers itself and
                // the walk keeps whichever candidate the origin prefers.
                // `best == origin` means no candidate yet (the launch
                // state), so the first node visited always takes the slot.
                let my_utility = self.utility(to);
                let displaces = to != origin
                    && (best == origin
                        || self.preference(origin_utility, my_utility)
                            < self.preference(origin_utility, best_utility));
                let (best, best_utility) = if displaces {
                    (to, my_utility)
                } else {
                    (best, best_utility)
                };
                if ttl == 0 {
                    if best != origin && ctx.graph().is_alive(origin) {
                        ctx.send(
                            origin,
                            OverlayMessage::UtilityReply {
                                candidate: best,
                                utility: best_utility,
                            },
                        );
                    }
                } else if let Some(next) = ctx.random_neighbor(to) {
                    ctx.send(
                        next,
                        OverlayMessage::UtilityProbe {
                            origin,
                            origin_utility,
                            best,
                            best_utility,
                            ttl: ttl - 1,
                        },
                    );
                }
            }
            OverlayMessage::UtilityReply { candidate, .. } => {
                self.consider(to, candidate, ctx);
            }
            // Scale-free traffic is not ours.
            OverlayMessage::JoinWalk { .. } | OverlayMessage::RewireWalk { .. } => {}
        }
    }
}

/// The deterministic utility hash: uniform in `[0, 1)`, a pure function
/// of `(seed, id)`.
#[must_use]
pub fn node_utility(seed: u64, v: NodeId) -> f64 {
    let h = splitmix64(seed ^ (v.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Fraction of live nodes satisfying the gradient property: the node has
/// the maximum utility in the graph, or at least one strictly
/// higher-utility neighbor. A converged gradient overlay scores 1.0 —
/// greedy uphill routing then always makes progress.
#[must_use]
pub fn monotone_fraction(g: &Graph, utility: impl Fn(NodeId) -> f64) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 1.0;
    }
    let max_u = g.nodes().map(&utility).fold(f64::NEG_INFINITY, f64::max);
    let ok = g
        .nodes()
        .filter(|&v| {
            let uv = utility(v);
            uv >= max_u || g.neighbors(v).iter().any(|&w| utility(w) > uv)
        })
        .count();
    ok as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_metrics::NOOP;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use crate::engine::OverlayEngine;

    #[test]
    fn utilities_are_deterministic_and_spread() {
        let proto = GradientOverlay::new(GradientConfig::default());
        let g = generators::ring(64);
        let us: Vec<f64> = g.nodes().map(|v| proto.utility(v)).collect();
        let us2: Vec<f64> = g.nodes().map(|v| proto.utility(v)).collect();
        assert_eq!(us, us2);
        assert!(us.iter().all(|u| (0.0..1.0).contains(u)));
        let mean = us.iter().sum::<f64>() / us.len() as f64;
        assert!((mean - 0.5).abs() < 0.15, "hash utilities look uniform");
    }

    #[test]
    fn gradient_search_improves_monotone_fraction() {
        let mut g = generators::ring(128);
        let proto = GradientOverlay::new(GradientConfig {
            probe_rate: 0.5,
            ..GradientConfig::default()
        });
        let util = {
            let p = proto.clone();
            move |v: NodeId| p.utility(v)
        };
        let before = monotone_fraction(&g, &util);
        let mut engine = OverlayEngine::new(proto, 77);
        engine.run(&mut g, 300, &NOOP);
        let after = monotone_fraction(&g, &util);
        assert!(
            after >= before,
            "gradient search regressed: {before} -> {after}"
        );
        assert!(after > 0.95, "monotone fraction only reached {after}");
        // The guards kept everyone attached.
        assert!(g.nodes().all(|v| g.degree(v) >= 1));
    }

    /// Brute-forces a utility seed under which the given predicate holds,
    /// so fixtures exercise the real hash instead of a mock.
    fn seed_where(pred: impl Fn(u64) -> bool) -> u64 {
        (0..100_000u64)
            .find(|&s| pred(s))
            .expect("orderable seed exists")
    }

    #[test]
    fn preferred_candidate_replaces_worst_neighbor() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        // u(d) > u(a) > u(b) > u(c): from a's viewpoint d is the best
        // possible peer (above, small gap) and b is replaceable.
        let seed = seed_where(|s| {
            node_utility(s, d) > node_utility(s, a)
                && node_utility(s, a) > node_utility(s, b)
                && node_utility(s, b) > node_utility(s, c)
        });
        let proto = GradientOverlay::new(GradientConfig {
            utility_seed: seed,
            ..GradientConfig::default()
        });
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        // a's only (hence worst) neighbor is b; candidate d is above a so
        // it is strictly preferred. Dropping a-b is legal: b keeps degree
        // 3 and keeps d as an upward link.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut outbox = Vec::new();
        let mut ctx = OverlayCtx::new(&mut g, &mut rng, &mut outbox, 0);
        proto.consider(a, d, &mut ctx);
        drop(ctx);
        assert!(g.has_edge(a, d), "preferred candidate adopted");
        assert!(!g.has_edge(a, b), "worst edge dropped");
    }

    #[test]
    fn swap_guard_never_strands_a_degree_one_neighbor() {
        let mut g = Graph::new();
        let e = g.add_node();
        let f = g.add_node();
        let h = g.add_node();
        // u(f) > u(h) > u(e): from f's viewpoint, candidate h (below,
        // small gap) is strictly preferred over neighbor e (below, large
        // gap) — but e has degree 1, so the swap must be refused.
        let seed = seed_where(|s| {
            node_utility(s, f) > node_utility(s, h) && node_utility(s, h) > node_utility(s, e)
        });
        let proto = GradientOverlay::new(GradientConfig {
            utility_seed: seed,
            ..GradientConfig::default()
        });
        g.add_edge(f, e).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut outbox = Vec::new();
        let mut ctx = OverlayCtx::new(&mut g, &mut rng, &mut outbox, 0);
        proto.consider(f, h, &mut ctx);
        drop(ctx);
        assert!(g.has_edge(f, e), "degree-1 neighbor never dropped");
        assert!(!g.has_edge(f, h), "swap refused outright");
    }

    #[test]
    fn swap_guard_preserves_last_upward_link() {
        let mut g = Graph::new();
        let top = g.add_node();
        let mid = g.add_node();
        let low = g.add_node();
        let cand = g.add_node();
        // u(top) > u(cand) > u(mid) > u(low). `mid` is `low`'s only
        // upward neighbor; `top`-`mid` exists so dropping `mid` wouldn't
        // be the issue — the issue is `mid` dropping `low`: refused only
        // if `low` would lose its sole upward link, which it would.
        let seed = seed_where(|s| {
            node_utility(s, top) > node_utility(s, cand)
                && node_utility(s, cand) > node_utility(s, mid)
                && node_utility(s, mid) > node_utility(s, low)
        });
        let proto = GradientOverlay::new(GradientConfig {
            utility_seed: seed,
            ..GradientConfig::default()
        });
        g.add_edge(mid, low).unwrap();
        g.add_edge(mid, top).unwrap();
        g.add_edge(low, top).unwrap();
        // From mid's viewpoint: worst neighbor is low (below), candidate
        // `cand` is above — strictly preferred. low has degree 2 (mid,
        // top) and top is still an upward link for low, so the swap IS
        // legal here.
        let mut rng = SmallRng::seed_from_u64(0);
        let mut outbox = Vec::new();
        let mut ctx = OverlayCtx::new(&mut g, &mut rng, &mut outbox, 0);
        proto.consider(mid, cand, &mut ctx);
        drop(ctx);
        assert!(g.has_edge(mid, cand));
        assert!(!g.has_edge(mid, low), "low kept its upward link via top");

        // Remove low-top: now mid is low's only upward link and the same
        // kind of swap must be refused even though low has degree 2.
        let mut g2 = Graph::new();
        let top2 = g2.add_node();
        let mid2 = g2.add_node();
        let low2 = g2.add_node();
        let cand2 = g2.add_node();
        let other = g2.add_node();
        let seed2 = seed_where(|s| {
            node_utility(s, top2) > node_utility(s, cand2)
                && node_utility(s, cand2) > node_utility(s, mid2)
                && node_utility(s, mid2) > node_utility(s, low2)
                && node_utility(s, low2) > node_utility(s, other)
        });
        let proto2 = GradientOverlay::new(GradientConfig {
            utility_seed: seed2,
            ..GradientConfig::default()
        });
        g2.add_edge(mid2, low2).unwrap();
        g2.add_edge(mid2, top2).unwrap();
        g2.add_edge(low2, other).unwrap(); // keeps low2 at degree 2, but `other` is below it
        let mut rng2 = SmallRng::seed_from_u64(0);
        let mut outbox2 = Vec::new();
        let mut ctx2 = OverlayCtx::new(&mut g2, &mut rng2, &mut outbox2, 0);
        proto2.consider(mid2, cand2, &mut ctx2);
        drop(ctx2);
        assert!(g2.has_edge(mid2, low2), "low2's only upward link survives");
        assert!(!g2.has_edge(mid2, cand2));
    }
}

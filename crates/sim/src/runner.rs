//! Experiment runners: static repetition and dynamic scenario driving.
//!
//! Each runner exists in two forms: a `_rec` variant threading a
//! [`Recorder`] through every estimate (walk hops land on the walk-level
//! metrics; the runner itself adds [`Metric::EstimatesCompleted`],
//! [`Metric::ReportedMessages`], and — for the dynamic runner —
//! [`Metric::Refreezes`] and [`Metric::WalkRetries`]), and the historical
//! recorder-less form delegating to it with the no-op recorder. Both
//! consume the identical RNG stream, so record series are bit-identical.
//!
//! Under injected faults ([`crate::faults`]) a run can legitimately fail;
//! the `try_` runners ([`try_run_static`], [`try_run_dynamic`] and their
//! variants) degrade gracefully, returning a [`RunFailure`] carrying the
//! failing run index, the attempts made, the classified fault tally and
//! every record completed before the failure. The panicking forms are
//! thin wrappers kept for the fault-free experiment paths.

use census_core::{AdaptiveTimeout, EstimateError, LossClass, SizeEstimator, StepBudgeted};
use census_graph::{NodeId, Topology};
use census_metrics::{GaugeMetric, Metric, Recorder, RunCtx, NOOP};
use census_stats::SlidingWindow;
use rand::Rng;
use std::fmt;

use crate::{DynamicNetwork, Scenario};

/// One row of an experiment's output series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunRecord {
    /// Run index (0-based).
    pub run: u64,
    /// Ground truth: size of the probing node's connected component.
    pub true_size: f64,
    /// The raw estimate of this run.
    pub estimate: f64,
    /// Sliding-window mean of estimates up to and including this run
    /// (equal to `estimate` when no window is configured).
    pub smoothed: f64,
    /// Message cost of this run.
    pub messages: u64,
}

/// Configuration of an experiment run series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    runs: u64,
    window: Option<usize>,
    retries: u32,
    adaptive_timeout: Option<f64>,
}

impl RunConfig {
    /// `runs` estimation runs, no smoothing, up to 5 retries per run for
    /// walks broken by churn, no adaptive step budget.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn new(runs: u64) -> Self {
        assert!(runs > 0, "an experiment needs at least one run");
        Self {
            runs,
            window: None,
            retries: 5,
            adaptive_timeout: None,
        }
    }

    /// Smooths estimates with a sliding window of the given size (the
    /// paper uses 200 for Figures 2/6 and 700 for Figures 8–10).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.window = Some(window);
        self
    }

    /// Sets how many times a failed run is retried from a fresh random
    /// initiator before the experiment gives up (panicking runners panic;
    /// `try_` runners return a [`RunFailure`]).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Enables the §5.3.1 adaptive step budget in the dynamic runner:
    /// each attempt runs the estimator under a budget of `mean + k·std`
    /// learned from completed trips (doubling per retry within a run), so
    /// a probe stranded by churn is declared lost instead of walking
    /// forever.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    #[must_use]
    pub fn with_adaptive_timeout(mut self, k: f64) -> Self {
        assert!(k > 0.0, "timeout multiplier must be positive");
        self.adaptive_timeout = Some(k);
        self
    }

    /// Number of runs configured.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The adaptive-timeout multiplier `k`, if enabled.
    #[must_use]
    pub fn adaptive_timeout(&self) -> Option<f64> {
        self.adaptive_timeout
    }
}

/// Classified tally of the failed estimation attempts inside one runner
/// invocation, by [`LossClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTally {
    /// Attempts that exceeded their step budget ([`LossClass::Timeout`]).
    pub timeouts: u64,
    /// Attempts stranded with no live neighbour — injected loss or an
    /// isolated probe ([`LossClass::Stuck`]).
    pub stuck: u64,
    /// Attempts broken by membership churn ([`LossClass::ChurnBroken`]).
    pub churn_broken: u64,
    /// Attempts rejected as degenerate configurations (never retried).
    pub degenerate: u64,
    /// Retries spent across all runs (equals the runner's
    /// [`Metric::WalkRetries`] crediting).
    pub retries: u64,
}

impl FaultTally {
    fn classify(&mut self, e: &EstimateError) {
        match LossClass::of(e) {
            LossClass::Timeout => self.timeouts += 1,
            LossClass::Stuck => self.stuck += 1,
            LossClass::ChurnBroken => self.churn_broken += 1,
            LossClass::Degenerate => self.degenerate += 1,
        }
    }

    /// Total failed attempts recorded in this tally.
    #[must_use]
    pub fn failed_attempts(&self) -> u64 {
        self.timeouts + self.stuck + self.churn_broken + self.degenerate
    }
}

/// A runner gave up on a run: which one, after how many attempts, why —
/// plus everything that *did* complete, so a partial series is never
/// thrown away.
#[derive(Debug, Clone, PartialEq)]
pub struct RunFailure {
    /// Index of the run that could not be completed.
    pub run: u64,
    /// Attempts made on the failing run (`1 + retries` unless the error
    /// was non-retryable).
    pub attempts: u32,
    /// The error of the final attempt.
    pub last_error: EstimateError,
    /// Classified tally of every failed attempt across the invocation.
    pub tally: FaultTally,
    /// Records of the runs completed before the failure.
    pub completed: Vec<RunRecord>,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run {} failed after {} attempt(s): {} ({} run(s) completed before it)",
            self.run,
            self.attempts,
            self.last_error,
            self.completed.len()
        )
    }
}

impl std::error::Error for RunFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.last_error)
    }
}

/// Runs `estimator` through a churn [`Scenario`] on a [`DynamicNetwork`],
/// reproducing the dynamic experiments of §5.3.
///
/// Before each run the scenario's membership delta is applied (joins per
/// the network's join rule, uniform departures). The probing node is kept
/// fixed across runs, re-drawn uniformly whenever churn removes it — the
/// natural reading of the paper's "the probing node".
///
/// Ground truth (`true_size`) is the probing node's component size,
/// recomputed only when membership changed (BFS is the dominant cost at
/// paper scale otherwise).
///
/// Walks run over a frozen CSR snapshot of the overlay, re-frozen after
/// every non-zero membership delta: a re-freeze costs `O(slots + edges)`
/// writes while a single Random Tour costs `≈ d̄·N` hops, so the snapshot
/// pays for itself even when churn hits every run (and is free on the
/// churn-less stretches). Because freezing preserves neighbour-list
/// order, the estimate series is bit-identical to walking the live graph
/// with the same RNG stream.
///
/// # Panics
///
/// Panics if the overlay becomes empty, or if a run keeps failing after
/// the configured retries (e.g. the probing node's component has shrunk
/// to an isolated point — at that point a size estimate is meaningless).
/// Use [`try_run_dynamic`] to degrade gracefully instead.
pub fn run_dynamic<E, R>(
    net: &mut DynamicNetwork,
    estimator: &E,
    config: &RunConfig,
    scenario: &Scenario,
    rng: &mut R,
) -> Vec<RunRecord>
where
    E: StepBudgeted,
    R: Rng,
{
    run_dynamic_rec(net, estimator, config, scenario, rng, &NOOP)
}

/// [`run_dynamic`] with cost observability: every walk hop is charged to
/// `recorder` through the estimator's context, each post-churn snapshot
/// rebuild counts as a [`Metric::Refreezes`] event, each churn-broken
/// attempt as [`Metric::WalkRetries`], and each successful run as
/// [`Metric::EstimatesCompleted`] plus its [`Metric::ReportedMessages`].
///
/// The recorder is strictly passive (it draws no randomness), so the
/// returned series is bit-identical to [`run_dynamic`] with the same RNG
/// stream.
///
/// # Panics
///
/// Panics under the same conditions as [`run_dynamic`].
pub fn run_dynamic_rec<E, R, Rec>(
    net: &mut DynamicNetwork,
    estimator: &E,
    config: &RunConfig,
    scenario: &Scenario,
    rng: &mut R,
    recorder: &Rec,
) -> Vec<RunRecord>
where
    E: StepBudgeted,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    try_run_dynamic_rec(net, estimator, config, scenario, rng, recorder).unwrap_or_else(|f| {
        panic!(
            "run {} failed after {} retries: {}",
            f.run,
            f.attempts.saturating_sub(1),
            f.last_error
        )
    })
}

/// Graceful form of [`run_dynamic`]: instead of panicking when a run
/// exhausts its retries, returns a [`RunFailure`] with the classified
/// fault tally and the partial series.
///
/// # Errors
///
/// Returns [`RunFailure`] when a run fails `1 + retries` times, or
/// immediately on a non-retryable ([`EstimateError::Degenerate`]) error.
///
/// # Panics
///
/// Still panics if the scenario empties the overlay — that is a
/// configuration error, not an injected fault.
pub fn try_run_dynamic<E, R>(
    net: &mut DynamicNetwork,
    estimator: &E,
    config: &RunConfig,
    scenario: &Scenario,
    rng: &mut R,
) -> Result<Vec<RunRecord>, RunFailure>
where
    E: StepBudgeted,
    R: Rng,
{
    try_run_dynamic_rec(net, estimator, config, scenario, rng, &NOOP)
}

/// [`try_run_dynamic`] with cost observability (see [`run_dynamic_rec`]
/// for the crediting scheme).
///
/// When the config enables [`RunConfig::with_adaptive_timeout`], the
/// runner keeps an [`AdaptiveTimeout`] over completed trip costs and runs
/// each attempt under [`StepBudgeted::with_step_budget`] of the learned
/// `mean + k·std` budget, doubled on each retry within a run — the
/// §5.3.1 initiator discipline. Without it the estimator runs unbounded
/// and the series is bit-identical to the historical runner.
///
/// # Errors
///
/// Same as [`try_run_dynamic`].
///
/// # Panics
///
/// Same as [`try_run_dynamic`].
pub fn try_run_dynamic_rec<E, R, Rec>(
    net: &mut DynamicNetwork,
    estimator: &E,
    config: &RunConfig,
    scenario: &Scenario,
    rng: &mut R,
    recorder: &Rec,
) -> Result<Vec<RunRecord>, RunFailure>
where
    E: StepBudgeted,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let mut records = Vec::with_capacity(config.runs as usize);
    let mut window = config.window.map(SlidingWindow::new);
    let mut probe: Option<NodeId> = None;
    let mut cached_truth: Option<f64> = None;
    let mut frozen = net.freeze();
    let mut tally = FaultTally::default();
    let mut tracker = config
        .adaptive_timeout
        .map(|k| AdaptiveTimeout::new(u64::MAX, k).with_warmup(10));

    for run in 0..config.runs {
        let delta = scenario.delta_at(run);
        if delta != 0 {
            if delta > 0 {
                net.churn(delta as usize, 0, rng);
            } else {
                net.churn(0, (-delta) as usize, rng);
            }
            cached_truth = None;
            frozen = net.freeze();
            recorder.incr(Metric::Refreezes, 1);
            recorder.set_gauge(GaugeMetric::SnapshotEpoch, frozen.epoch());
        }
        assert!(net.size() > 0, "scenario emptied the overlay at run {run}");

        // Re-draw the probing node if churn removed it.
        if probe.is_none_or(|p| !net.graph().is_alive(p)) {
            probe = Some(net.graph().random_node(rng).expect("overlay is non-empty"));
            cached_truth = None;
        }
        let mut estimate = None;
        for attempt in 0..=config.retries {
            let probing = probe.expect("probe was just ensured");
            // Under the adaptive discipline each attempt gets a learned
            // step budget, doubled per retry so a mis-learned budget
            // cannot wedge the run.
            let budgeted;
            let attempt_estimator: &E = match tracker.as_ref() {
                Some(t) => {
                    let base = t.budget();
                    let budget = if base == u64::MAX {
                        u64::MAX
                    } else {
                        base.saturating_mul(1u64 << attempt.min(63))
                    };
                    budgeted = estimator.with_step_budget(budget);
                    &budgeted
                }
                None => estimator,
            };
            let mut ctx = RunCtx::with_recorder(&frozen, &mut *rng, recorder);
            match attempt_estimator.estimate_with(&mut ctx, probing) {
                Ok(e) => {
                    if let Some(t) = tracker.as_mut() {
                        t.record(e.messages);
                    }
                    estimate = Some(e);
                    break;
                }
                Err(e @ EstimateError::Walk(_)) if attempt < config.retries => {
                    // Churn-broken (or faulted) walk: re-draw the
                    // probing node and try again.
                    tally.classify(&e);
                    tally.retries += 1;
                    recorder.incr(Metric::WalkRetries, 1);
                    probe = Some(net.graph().random_node(rng).expect("overlay is non-empty"));
                    cached_truth = None;
                }
                Err(e) => {
                    tally.classify(&e);
                    return Err(RunFailure {
                        run,
                        attempts: attempt + 1,
                        last_error: e,
                        tally,
                        completed: records,
                    });
                }
            }
        }
        let estimate = estimate.expect("loop either sets an estimate or returns");
        let probing = probe.expect("probe is set");
        recorder.incr(Metric::EstimatesCompleted, 1);
        recorder.incr(Metric::ReportedMessages, estimate.messages);

        let truth = *cached_truth.get_or_insert_with(|| net.component_size_of(probing) as f64);
        let smoothed = match &mut window {
            Some(w) => {
                w.push(estimate.value);
                w.mean()
            }
            None => estimate.value,
        };
        records.push(RunRecord {
            run,
            true_size: truth,
            estimate: estimate.value,
            smoothed,
            messages: estimate.messages,
        });
    }
    Ok(records)
}

/// Repeats an estimator on a *static* overlay, returning the raw series —
/// the workload of the paper's Figures 1–7 and Table 1.
///
/// The initiator is fixed across runs (the paper launches repeated
/// measurements from one probing node).
///
/// Membership never changes here, so the overlay is frozen into a CSR
/// snapshot once and every walk runs over the flat representation; the
/// series is bit-identical to walking the live graph with the same RNG
/// stream (freezing preserves neighbour-list order).
///
/// # Panics
///
/// Panics if any run fails (static overlays cannot break walks unless the
/// initiator is isolated, which is a configuration error). Use
/// [`try_run_static`] to degrade gracefully under injected faults.
pub fn run_static<E, R>(
    net: &DynamicNetwork,
    estimator: &E,
    initiator: NodeId,
    runs: u64,
    rng: &mut R,
) -> Vec<RunRecord>
where
    E: SizeEstimator,
    R: Rng,
{
    run_static_rec(net, estimator, initiator, runs, rng, &NOOP)
}

/// [`run_static`] with cost observability: every walk hop is charged to
/// `recorder` through the estimator's context, and each run adds one
/// [`Metric::EstimatesCompleted`] event plus its
/// [`Metric::ReportedMessages`].
///
/// The recorder is strictly passive (it draws no randomness), so the
/// returned series is bit-identical to [`run_static`] with the same RNG
/// stream.
///
/// # Panics
///
/// Panics under the same conditions as [`run_static`].
pub fn run_static_rec<E, R, Rec>(
    net: &DynamicNetwork,
    estimator: &E,
    initiator: NodeId,
    runs: u64,
    rng: &mut R,
    recorder: &Rec,
) -> Vec<RunRecord>
where
    E: SizeEstimator,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    if runs == 0 {
        return Vec::new();
    }
    try_run_static_rec(
        net,
        estimator,
        initiator,
        &RunConfig::new(runs).with_retries(0),
        rng,
        recorder,
    )
    .unwrap_or_else(|f| panic!("static run {} failed: {}", f.run, f.last_error))
}

/// Graceful form of [`run_static`]: retries failed runs (same initiator —
/// the probing node does not change on a static overlay) up to the
/// config's retry budget, and returns a [`RunFailure`] with the fault
/// tally and partial series instead of panicking when a run cannot
/// complete.
///
/// # Errors
///
/// Returns [`RunFailure`] when a run fails `1 + retries` times, or
/// immediately on a non-retryable ([`EstimateError::Degenerate`]) error.
pub fn try_run_static<E, R>(
    net: &DynamicNetwork,
    estimator: &E,
    initiator: NodeId,
    config: &RunConfig,
    rng: &mut R,
) -> Result<Vec<RunRecord>, RunFailure>
where
    E: SizeEstimator,
    R: Rng,
{
    try_run_static_rec(net, estimator, initiator, config, rng, &NOOP)
}

/// [`try_run_static`] with cost observability (crediting as in
/// [`run_static_rec`], plus [`Metric::WalkRetries`] per retried attempt).
///
/// # Errors
///
/// Same as [`try_run_static`].
pub fn try_run_static_rec<E, R, Rec>(
    net: &DynamicNetwork,
    estimator: &E,
    initiator: NodeId,
    config: &RunConfig,
    rng: &mut R,
    recorder: &Rec,
) -> Result<Vec<RunRecord>, RunFailure>
where
    E: SizeEstimator,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let truth = net.component_size_of(initiator) as f64;
    let frozen = net.freeze();
    try_run_static_on(&frozen, truth, estimator, initiator, config, rng, recorder)
}

/// The static runner over an arbitrary [`Topology`] — the entry point for
/// fault-injection experiments, where the walked topology is a
/// [`crate::faults::FaultyTopology`] wrapper rather than a frozen
/// [`DynamicNetwork`] snapshot and ground truth is supplied by the
/// caller.
///
/// Failed runs are retried with the same initiator up to the config's
/// retry budget, crediting [`Metric::WalkRetries`] per retry; runs that
/// complete are recorded exactly as in [`run_static_rec`].
///
/// # Errors
///
/// Returns [`RunFailure`] when a run fails `1 + retries` times, or
/// immediately on a non-retryable ([`EstimateError::Degenerate`]) error.
pub fn try_run_static_on<T, E, R, Rec>(
    topology: &T,
    true_size: f64,
    estimator: &E,
    initiator: NodeId,
    config: &RunConfig,
    rng: &mut R,
    recorder: &Rec,
) -> Result<Vec<RunRecord>, RunFailure>
where
    T: Topology + ?Sized,
    E: SizeEstimator,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let mut records = Vec::with_capacity(config.runs as usize);
    let mut window = config.window.map(SlidingWindow::new);
    let mut tally = FaultTally::default();
    for run in 0..config.runs {
        let mut estimate = None;
        for attempt in 0..=config.retries {
            let mut ctx = RunCtx::with_recorder(topology, &mut *rng, recorder);
            match estimator.estimate_with(&mut ctx, initiator) {
                Ok(e) => {
                    estimate = Some(e);
                    break;
                }
                Err(e @ EstimateError::Walk(_)) if attempt < config.retries => {
                    tally.classify(&e);
                    tally.retries += 1;
                    recorder.incr(Metric::WalkRetries, 1);
                }
                Err(e) => {
                    tally.classify(&e);
                    return Err(RunFailure {
                        run,
                        attempts: attempt + 1,
                        last_error: e,
                        tally,
                        completed: records,
                    });
                }
            }
        }
        let e = estimate.expect("loop either sets an estimate or returns");
        recorder.incr(Metric::EstimatesCompleted, 1);
        recorder.incr(Metric::ReportedMessages, e.messages);
        let smoothed = match &mut window {
            Some(w) => {
                w.push(e.value);
                w.mean()
            }
            None => e.value,
        };
        records.push(RunRecord {
            run,
            true_size,
            estimate: e.value,
            smoothed,
            messages: e.messages,
        });
    }
    Ok(records)
}

/// Post-processes a record series into the paper's "quality %" cumulative
/// average (Figure 1): entry `k` is the mean of the first `k+1` estimates
/// as a percentage of the true size at run `k`.
#[must_use]
pub fn cumulative_quality_percent(records: &[RunRecord]) -> Vec<f64> {
    let mut sum = 0.0;
    records
        .iter()
        .enumerate()
        .map(|(k, r)| {
            sum += r.estimate;
            100.0 * (sum / (k + 1) as f64) / r.true_size
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::JoinRule;
    use census_core::{PointEstimator, RandomTour, SampleCollide};
    use census_graph::generators;
    use census_sampling::OracleSampler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(n: usize, seed: u64) -> (DynamicNetwork, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::balanced(n, 10, &mut rng);
        (
            DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 }),
            rng,
        )
    }

    #[test]
    fn static_runs_have_constant_truth() {
        let (net, mut rng) = net(200, 1);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let recs = run_static(&net, &RandomTour::new(), probe, 50, &mut rng);
        assert_eq!(recs.len(), 50);
        assert!(recs.iter().all(|r| r.true_size == recs[0].true_size));
        assert!(recs.iter().all(|r| r.estimate > 0.0));
    }

    #[test]
    fn dynamic_truth_tracks_shrinkage() {
        let (mut net, mut rng) = net(400, 2);
        let scenario = Scenario::new().remove_gradually(10, 40, 200);
        let sc = SampleCollide::new(OracleSampler::new(), 5)
            .with_point_estimator(PointEstimator::Asymptotic);
        let recs = run_dynamic(&mut net, &sc, &RunConfig::new(50), &scenario, &mut rng);
        assert_eq!(net.size(), 200);
        let first = recs.first().expect("non-empty");
        let last = recs.last().expect("non-empty");
        assert!(first.true_size > last.true_size);
        // Oracle-backed S&C keeps tracking within its statistical noise.
        assert!((last.estimate / last.true_size - 1.0).abs() < 1.5);
    }

    #[test]
    fn sliding_window_smooths() {
        let (net_, mut rng) = net(300, 3);
        let mut net_ = net_;
        let recs = run_dynamic(
            &mut net_,
            &RandomTour::new(),
            &RunConfig::new(300).with_window(50),
            &Scenario::new(),
            &mut rng,
        );
        // Smoothed series varies less than the raw one.
        let spread = |xs: Vec<f64>| {
            let m: census_stats::OnlineMoments = xs.into_iter().collect();
            m.sample_variance()
        };
        let raw = spread(recs.iter().map(|r| r.estimate).collect());
        let smooth = spread(recs.iter().skip(50).map(|r| r.smoothed).collect());
        assert!(smooth < raw / 4.0, "raw {raw} vs smoothed {smooth}");
    }

    #[test]
    fn probe_is_replaced_when_removed() {
        let (mut net, mut rng) = net(100, 4);
        // Violent churn: remove 90% over 20 runs.
        let scenario = Scenario::new().remove_gradually(0, 20, 90);
        let sc = SampleCollide::new(OracleSampler::new(), 2)
            .with_point_estimator(PointEstimator::Asymptotic);
        let recs = run_dynamic(&mut net, &sc, &RunConfig::new(25), &scenario, &mut rng);
        assert_eq!(recs.len(), 25);
        assert_eq!(net.size(), 10);
    }

    #[test]
    fn cumulative_quality_converges_to_100() {
        let (net, mut rng) = net(300, 5);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let recs = run_static(&net, &RandomTour::new(), probe, 2_000, &mut rng);
        let q = cumulative_quality_percent(&recs);
        let last = *q.last().expect("non-empty");
        assert!((last - 100.0).abs() < 15.0, "cumulative quality {last}%");
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = RunConfig::new(0);
    }

    #[test]
    fn recorded_static_runs_match_unrecorded_and_reconcile() {
        use census_metrics::{Metric, Registry};
        let (net, mut rng) = net(200, 6);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let mut plain_rng = rng.clone();
        let reg = Registry::new();
        let recorded = run_static_rec(&net, &RandomTour::new(), probe, 40, &mut rng, &reg);
        let plain = run_static(&net, &RandomTour::new(), probe, 40, &mut plain_rng);
        assert_eq!(recorded, plain, "recording must not perturb the series");
        let reported: u64 = recorded.iter().map(|r| r.messages).sum();
        assert_eq!(reg.counter(Metric::ReportedMessages), reported);
        assert_eq!(
            reg.message_total(),
            reported,
            "loss-free runs reconcile exactly"
        );
        assert_eq!(reg.counter(Metric::EstimatesCompleted), 40);
    }

    #[test]
    fn recorded_dynamic_runs_count_refreezes() {
        use census_metrics::{Metric, Registry};
        let (mut net, mut rng) = net(400, 7);
        let scenario = Scenario::new().remove_gradually(10, 40, 200);
        let sc = SampleCollide::new(OracleSampler::new(), 5)
            .with_point_estimator(PointEstimator::Asymptotic);
        let reg = Registry::new();
        let recs = run_dynamic_rec(
            &mut net,
            &sc,
            &RunConfig::new(50),
            &scenario,
            &mut rng,
            &reg,
        );
        assert_eq!(recs.len(), 50);
        // remove_gradually(10, 40, 200) spreads removals over runs 10..40,
        // each of which re-freezes the snapshot.
        assert_eq!(reg.counter(Metric::Refreezes), 30);
        assert_eq!(reg.counter(Metric::EstimatesCompleted), 50);
        // Initial freeze stamps epoch 0; the gauge holds the last of the
        // 30 re-freezes.
        assert_eq!(reg.gauge(GaugeMetric::SnapshotEpoch), 30);
        let reported: u64 = recs.iter().map(|r| r.messages).sum();
        assert_eq!(reg.counter(Metric::ReportedMessages), reported);
    }

    #[test]
    fn try_run_static_matches_the_panicking_runner_when_nothing_fails() {
        let (net, mut rng) = net(200, 8);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let mut plain_rng = rng.clone();
        let tried = try_run_static(
            &net,
            &RandomTour::new(),
            probe,
            &RunConfig::new(30).with_retries(0),
            &mut rng,
        )
        .expect("fault-free static runs cannot fail");
        let plain = run_static(&net, &RandomTour::new(), probe, 30, &mut plain_rng);
        assert_eq!(tried, plain, "graceful runner must not perturb the series");
    }

    #[test]
    fn try_run_static_on_reports_the_fault_tally_on_give_up() {
        use census_metrics::{Metric, Registry};
        let g = generators::ring(20);
        // Certain loss: every attempt dies stuck at the first hop.
        let faulty = FaultPlan::new().with_message_loss(1.0, 11).apply(&g);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let failure = try_run_static_on(
            &faulty,
            20.0,
            &RandomTour::new(),
            NodeId::new(0),
            &RunConfig::new(10).with_retries(3),
            &mut rng,
            &reg,
        )
        .expect_err("certain loss must exhaust the retries");
        assert_eq!(failure.run, 0);
        assert_eq!(failure.attempts, 4);
        assert!(failure.completed.is_empty());
        assert_eq!(failure.tally.stuck, 4);
        assert_eq!(failure.tally.retries, 3);
        assert_eq!(failure.tally.failed_attempts(), 4);
        assert_eq!(reg.counter(Metric::WalkRetries), 3);
        assert_eq!(reg.counter(Metric::EstimatesCompleted), 0);
        let shown = failure.to_string();
        assert!(shown.contains("run 0 failed after 4 attempt(s)"), "{shown}");
        assert!(
            std::error::Error::source(&failure).is_some(),
            "failure must chain to the walk error"
        );
    }

    #[test]
    fn dynamic_adaptive_timeout_completes_on_a_stable_overlay() {
        let (mut net, mut rng) = net(300, 10);
        let recs = try_run_dynamic(
            &mut net,
            &RandomTour::new(),
            &RunConfig::new(60).with_adaptive_timeout(6.0),
            &Scenario::new(),
            &mut rng,
        )
        .expect("a stable overlay with k=6 budgets must complete");
        assert_eq!(recs.len(), 60);
        assert!(recs.iter().all(|r| r.estimate > 0.0));
    }

    #[test]
    fn run_static_with_zero_runs_returns_an_empty_series() {
        let (net, mut rng) = net(50, 12);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let recs = run_static(&net, &RandomTour::new(), probe, 0, &mut rng);
        assert!(recs.is_empty());
    }
}

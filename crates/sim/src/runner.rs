//! Experiment runners: static repetition and dynamic scenario driving.
//!
//! Each runner exists in two forms: a `_rec` variant threading a
//! [`Recorder`] through every estimate (walk hops land on the walk-level
//! metrics; the runner itself adds [`Metric::EstimatesCompleted`],
//! [`Metric::ReportedMessages`], and — for the dynamic runner —
//! [`Metric::Refreezes`] and [`Metric::WalkRetries`]), and the historical
//! recorder-less form delegating to it with the no-op recorder. Both
//! consume the identical RNG stream, so record series are bit-identical.

use census_core::{EstimateError, SizeEstimator};
use census_graph::NodeId;
use census_metrics::{Metric, Recorder, RunCtx, NOOP};
use census_stats::SlidingWindow;
use rand::Rng;

use crate::{DynamicNetwork, Scenario};

/// One row of an experiment's output series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunRecord {
    /// Run index (0-based).
    pub run: u64,
    /// Ground truth: size of the probing node's connected component.
    pub true_size: f64,
    /// The raw estimate of this run.
    pub estimate: f64,
    /// Sliding-window mean of estimates up to and including this run
    /// (equal to `estimate` when no window is configured).
    pub smoothed: f64,
    /// Message cost of this run.
    pub messages: u64,
}

/// Configuration of an experiment run series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    runs: u64,
    window: Option<usize>,
    retries: u32,
}

impl RunConfig {
    /// `runs` estimation runs, no smoothing, up to 5 retries per run for
    /// walks broken by churn.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn new(runs: u64) -> Self {
        assert!(runs > 0, "an experiment needs at least one run");
        Self {
            runs,
            window: None,
            retries: 5,
        }
    }

    /// Smooths estimates with a sliding window of the given size (the
    /// paper uses 200 for Figures 2/6 and 700 for Figures 8–10).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.window = Some(window);
        self
    }

    /// Sets how many times a failed run is retried from a fresh random
    /// initiator before the experiment panics.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Number of runs configured.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

/// Runs `estimator` through a churn [`Scenario`] on a [`DynamicNetwork`],
/// reproducing the dynamic experiments of §5.3.
///
/// Before each run the scenario's membership delta is applied (joins per
/// the network's join rule, uniform departures). The probing node is kept
/// fixed across runs, re-drawn uniformly whenever churn removes it — the
/// natural reading of the paper's "the probing node".
///
/// Ground truth (`true_size`) is the probing node's component size,
/// recomputed only when membership changed (BFS is the dominant cost at
/// paper scale otherwise).
///
/// Walks run over a frozen CSR snapshot of the overlay, re-frozen after
/// every non-zero membership delta: a re-freeze costs `O(slots + edges)`
/// writes while a single Random Tour costs `≈ d̄·N` hops, so the snapshot
/// pays for itself even when churn hits every run (and is free on the
/// churn-less stretches). Because freezing preserves neighbour-list
/// order, the estimate series is bit-identical to walking the live graph
/// with the same RNG stream.
///
/// # Panics
///
/// Panics if the overlay becomes empty, or if a run keeps failing after
/// the configured retries (e.g. the probing node's component has shrunk
/// to an isolated point — at that point a size estimate is meaningless).
pub fn run_dynamic<E, R>(
    net: &mut DynamicNetwork,
    estimator: &E,
    config: &RunConfig,
    scenario: &Scenario,
    rng: &mut R,
) -> Vec<RunRecord>
where
    E: SizeEstimator,
    R: Rng,
{
    run_dynamic_rec(net, estimator, config, scenario, rng, &NOOP)
}

/// [`run_dynamic`] with cost observability: every walk hop is charged to
/// `recorder` through the estimator's context, each post-churn snapshot
/// rebuild counts as a [`Metric::Refreezes`] event, each churn-broken
/// attempt as [`Metric::WalkRetries`], and each successful run as
/// [`Metric::EstimatesCompleted`] plus its [`Metric::ReportedMessages`].
///
/// The recorder is strictly passive (it draws no randomness), so the
/// returned series is bit-identical to [`run_dynamic`] with the same RNG
/// stream.
///
/// # Panics
///
/// Panics under the same conditions as [`run_dynamic`].
pub fn run_dynamic_rec<E, R, Rec>(
    net: &mut DynamicNetwork,
    estimator: &E,
    config: &RunConfig,
    scenario: &Scenario,
    rng: &mut R,
    recorder: &Rec,
) -> Vec<RunRecord>
where
    E: SizeEstimator,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let mut records = Vec::with_capacity(config.runs as usize);
    let mut window = config.window.map(SlidingWindow::new);
    let mut probe: Option<NodeId> = None;
    let mut cached_truth: Option<f64> = None;
    let mut frozen = net.freeze();

    for run in 0..config.runs {
        let delta = scenario.delta_at(run);
        if delta != 0 {
            if delta > 0 {
                net.churn(delta as usize, 0, rng);
            } else {
                net.churn(0, (-delta) as usize, rng);
            }
            cached_truth = None;
            frozen = net.freeze();
            recorder.incr(Metric::Refreezes, 1);
        }
        assert!(net.size() > 0, "scenario emptied the overlay at run {run}");

        // Re-draw the probing node if churn removed it.
        if probe.is_none_or(|p| !net.graph().is_alive(p)) {
            probe = Some(net.graph().random_node(rng).expect("overlay is non-empty"));
            cached_truth = None;
        }
        let mut estimate = None;
        for attempt in 0..=config.retries {
            let probing = probe.expect("probe was just ensured");
            let mut ctx = RunCtx::with_recorder(&frozen, &mut *rng, recorder);
            match estimator.estimate_with(&mut ctx, probing) {
                Ok(e) => {
                    estimate = Some(e);
                    break;
                }
                Err(EstimateError::Walk(_)) if attempt < config.retries => {
                    // Churn-broken walk: re-draw the probing node.
                    recorder.incr(Metric::WalkRetries, 1);
                    probe = Some(net.graph().random_node(rng).expect("overlay is non-empty"));
                    cached_truth = None;
                }
                Err(e) => panic!("run {run} failed after {attempt} retries: {e}"),
            }
        }
        let estimate = estimate.expect("loop either sets an estimate or panics");
        let probing = probe.expect("probe is set");
        recorder.incr(Metric::EstimatesCompleted, 1);
        recorder.incr(Metric::ReportedMessages, estimate.messages);

        let truth = *cached_truth.get_or_insert_with(|| net.component_size_of(probing) as f64);
        let smoothed = match &mut window {
            Some(w) => {
                w.push(estimate.value);
                w.mean()
            }
            None => estimate.value,
        };
        records.push(RunRecord {
            run,
            true_size: truth,
            estimate: estimate.value,
            smoothed,
            messages: estimate.messages,
        });
    }
    records
}

/// Repeats an estimator on a *static* overlay, returning the raw series —
/// the workload of the paper's Figures 1–7 and Table 1.
///
/// The initiator is fixed across runs (the paper launches repeated
/// measurements from one probing node).
///
/// Membership never changes here, so the overlay is frozen into a CSR
/// snapshot once and every walk runs over the flat representation; the
/// series is bit-identical to walking the live graph with the same RNG
/// stream (freezing preserves neighbour-list order).
///
/// # Panics
///
/// Panics if any run fails (static overlays cannot break walks unless the
/// initiator is isolated, which is a configuration error).
pub fn run_static<E, R>(
    net: &DynamicNetwork,
    estimator: &E,
    initiator: NodeId,
    runs: u64,
    rng: &mut R,
) -> Vec<RunRecord>
where
    E: SizeEstimator,
    R: Rng,
{
    run_static_rec(net, estimator, initiator, runs, rng, &NOOP)
}

/// [`run_static`] with cost observability: every walk hop is charged to
/// `recorder` through the estimator's context, and each run adds one
/// [`Metric::EstimatesCompleted`] event plus its
/// [`Metric::ReportedMessages`].
///
/// The recorder is strictly passive (it draws no randomness), so the
/// returned series is bit-identical to [`run_static`] with the same RNG
/// stream.
///
/// # Panics
///
/// Panics under the same conditions as [`run_static`].
pub fn run_static_rec<E, R, Rec>(
    net: &DynamicNetwork,
    estimator: &E,
    initiator: NodeId,
    runs: u64,
    rng: &mut R,
    recorder: &Rec,
) -> Vec<RunRecord>
where
    E: SizeEstimator,
    R: Rng,
    Rec: Recorder + ?Sized,
{
    let truth = net.component_size_of(initiator) as f64;
    let frozen = net.freeze();
    (0..runs)
        .map(|run| {
            let mut ctx = RunCtx::with_recorder(&frozen, &mut *rng, recorder);
            let e = estimator
                .estimate_with(&mut ctx, initiator)
                .unwrap_or_else(|err| panic!("static run {run} failed: {err}"));
            recorder.incr(Metric::EstimatesCompleted, 1);
            recorder.incr(Metric::ReportedMessages, e.messages);
            RunRecord {
                run,
                true_size: truth,
                estimate: e.value,
                smoothed: e.value,
                messages: e.messages,
            }
        })
        .collect()
}

/// Post-processes a record series into the paper's "quality %" cumulative
/// average (Figure 1): entry `k` is the mean of the first `k+1` estimates
/// as a percentage of the true size at run `k`.
#[must_use]
pub fn cumulative_quality_percent(records: &[RunRecord]) -> Vec<f64> {
    let mut sum = 0.0;
    records
        .iter()
        .enumerate()
        .map(|(k, r)| {
            sum += r.estimate;
            100.0 * (sum / (k + 1) as f64) / r.true_size
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JoinRule;
    use census_core::{PointEstimator, RandomTour, SampleCollide};
    use census_graph::generators;
    use census_sampling::OracleSampler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(n: usize, seed: u64) -> (DynamicNetwork, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::balanced(n, 10, &mut rng);
        (
            DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 }),
            rng,
        )
    }

    #[test]
    fn static_runs_have_constant_truth() {
        let (net, mut rng) = net(200, 1);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let recs = run_static(&net, &RandomTour::new(), probe, 50, &mut rng);
        assert_eq!(recs.len(), 50);
        assert!(recs.iter().all(|r| r.true_size == recs[0].true_size));
        assert!(recs.iter().all(|r| r.estimate > 0.0));
    }

    #[test]
    fn dynamic_truth_tracks_shrinkage() {
        let (mut net, mut rng) = net(400, 2);
        let scenario = Scenario::new().remove_gradually(10, 40, 200);
        let sc = SampleCollide::new(OracleSampler::new(), 5)
            .with_point_estimator(PointEstimator::Asymptotic);
        let recs = run_dynamic(&mut net, &sc, &RunConfig::new(50), &scenario, &mut rng);
        assert_eq!(net.size(), 200);
        let first = recs.first().expect("non-empty");
        let last = recs.last().expect("non-empty");
        assert!(first.true_size > last.true_size);
        // Oracle-backed S&C keeps tracking within its statistical noise.
        assert!((last.estimate / last.true_size - 1.0).abs() < 1.5);
    }

    #[test]
    fn sliding_window_smooths() {
        let (net_, mut rng) = net(300, 3);
        let mut net_ = net_;
        let recs = run_dynamic(
            &mut net_,
            &RandomTour::new(),
            &RunConfig::new(300).with_window(50),
            &Scenario::new(),
            &mut rng,
        );
        // Smoothed series varies less than the raw one.
        let spread = |xs: Vec<f64>| {
            let m: census_stats::OnlineMoments = xs.into_iter().collect();
            m.sample_variance()
        };
        let raw = spread(recs.iter().map(|r| r.estimate).collect());
        let smooth = spread(recs.iter().skip(50).map(|r| r.smoothed).collect());
        assert!(smooth < raw / 4.0, "raw {raw} vs smoothed {smooth}");
    }

    #[test]
    fn probe_is_replaced_when_removed() {
        let (mut net, mut rng) = net(100, 4);
        // Violent churn: remove 90% over 20 runs.
        let scenario = Scenario::new().remove_gradually(0, 20, 90);
        let sc = SampleCollide::new(OracleSampler::new(), 2)
            .with_point_estimator(PointEstimator::Asymptotic);
        let recs = run_dynamic(&mut net, &sc, &RunConfig::new(25), &scenario, &mut rng);
        assert_eq!(recs.len(), 25);
        assert_eq!(net.size(), 10);
    }

    #[test]
    fn cumulative_quality_converges_to_100() {
        let (net, mut rng) = net(300, 5);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let recs = run_static(&net, &RandomTour::new(), probe, 2_000, &mut rng);
        let q = cumulative_quality_percent(&recs);
        let last = *q.last().expect("non-empty");
        assert!((last - 100.0).abs() < 15.0, "cumulative quality {last}%");
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = RunConfig::new(0);
    }

    #[test]
    fn recorded_static_runs_match_unrecorded_and_reconcile() {
        use census_metrics::{Metric, Registry};
        let (net, mut rng) = net(200, 6);
        let probe = net.graph().random_node(&mut rng).expect("non-empty");
        let mut plain_rng = rng.clone();
        let reg = Registry::new();
        let recorded = run_static_rec(&net, &RandomTour::new(), probe, 40, &mut rng, &reg);
        let plain = run_static(&net, &RandomTour::new(), probe, 40, &mut plain_rng);
        assert_eq!(recorded, plain, "recording must not perturb the series");
        let reported: u64 = recorded.iter().map(|r| r.messages).sum();
        assert_eq!(reg.counter(Metric::ReportedMessages), reported);
        assert_eq!(
            reg.message_total(),
            reported,
            "loss-free runs reconcile exactly"
        );
        assert_eq!(reg.counter(Metric::EstimatesCompleted), 40);
    }

    #[test]
    fn recorded_dynamic_runs_count_refreezes() {
        use census_metrics::{Metric, Registry};
        let (mut net, mut rng) = net(400, 7);
        let scenario = Scenario::new().remove_gradually(10, 40, 200);
        let sc = SampleCollide::new(OracleSampler::new(), 5)
            .with_point_estimator(PointEstimator::Asymptotic);
        let reg = Registry::new();
        let recs = run_dynamic_rec(
            &mut net,
            &sc,
            &RunConfig::new(50),
            &scenario,
            &mut rng,
            &reg,
        );
        assert_eq!(recs.len(), 50);
        // remove_gradually(10, 40, 200) spreads removals over runs 10..40,
        // each of which re-freezes the snapshot.
        assert_eq!(reg.counter(Metric::Refreezes), 30);
        assert_eq!(reg.counter(Metric::EstimatesCompleted), 50);
        let reported: u64 = recs.iter().map(|r| r.messages).sum();
        assert_eq!(reg.counter(Metric::ReportedMessages), reported);
    }
}

//! Dynamic overlay membership.

use census_graph::{FrozenView, Graph, NodeId, Topology};
use rand::Rng;

/// How a joining node attaches to the overlay (§5.1: "newly incorporated
/// nodes are connected via their own set of random targets, chosen
/// according to the rule for the corresponding model").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRule {
    /// The balanced random graph rule: draw a target degree in
    /// `1..=max_degree` and connect to that many random peers whose
    /// degree is below `max_degree`.
    Balanced {
        /// Degree cap (the paper uses 10).
        max_degree: usize,
    },
    /// The scale-free rule: attach `m` edges to peers chosen with
    /// probability proportional to their degree (preferential
    /// attachment, realised by degree-rejection sampling).
    PreferentialAttachment {
        /// Edges per joining node (the paper's BA graphs use small `m`).
        m: usize,
    },
}

/// An overlay network whose membership evolves between estimation runs.
///
/// Wraps a [`Graph`] with the paper's churn semantics:
///
/// - **joins** follow the configured [`JoinRule`];
/// - **departures** remove a uniformly random node, and survivors do
///   *not* seek replacement neighbours, so heavy churn degrades the
///   overlay's expansion and may disconnect it — exactly the stress the
///   paper's §5.3 scenarios apply;
/// - estimates are validated against the *probing node's component size*
///   (the paper: "the actual system size we report is always that of the
///   connected component to which the probing node belongs").
#[derive(Debug, Clone)]
pub struct DynamicNetwork {
    graph: Graph,
    join_rule: JoinRule,
}

impl DynamicNetwork {
    /// Wraps an initial overlay with a join rule.
    #[must_use]
    pub fn new(graph: Graph, join_rule: JoinRule) -> Self {
        Self { graph, join_rule }
    }

    /// Read access to the underlying overlay graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying overlay graph, for protocol
    /// drivers (`census-overlay`) that rewrite the topology edge by edge
    /// rather than through the churn rules. Any outstanding
    /// [`FrozenView`] stays valid — it is an immutable copy — but grows
    /// stale; callers that publish snapshots should re-freeze after
    /// mutating, exactly as after [`Self::churn`].
    #[must_use]
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The configured join rule.
    #[must_use]
    pub fn join_rule(&self) -> JoinRule {
        self.join_rule
    }

    /// Current number of live peers.
    #[must_use]
    pub fn size(&self) -> usize {
        self.graph.num_nodes()
    }

    /// One peer joins, attaching per the join rule. Returns its id.
    pub fn join<R: Rng>(&mut self, rng: &mut R) -> NodeId {
        let newcomer = self.graph.add_node();
        match self.join_rule {
            JoinRule::Balanced { max_degree } => {
                let want = rng.random_range(1..=max_degree);
                let mut attempts = 0;
                while self.graph.degree(newcomer) < want && attempts < 50 * max_degree {
                    attempts += 1;
                    let Some(t) = self.graph.random_node(rng) else {
                        break;
                    };
                    if t == newcomer
                        || self.graph.degree(t) >= max_degree
                        || self.graph.has_edge(newcomer, t)
                    {
                        continue;
                    }
                    self.graph
                        .add_edge(newcomer, t)
                        .expect("candidate was checked alive, distinct, and fresh");
                }
            }
            JoinRule::PreferentialAttachment { m } => {
                let max_deg = self.graph.max_degree().max(1);
                let mut attempts = 0;
                let budget = 200 * m * max_deg;
                while self.graph.degree(newcomer) < m && attempts < budget {
                    attempts += 1;
                    let Some(t) = self.graph.random_node(rng) else {
                        break;
                    };
                    if t == newcomer || self.graph.has_edge(newcomer, t) {
                        continue;
                    }
                    // Degree-proportional acceptance.
                    if rng.random_range(0..max_deg) < self.graph.degree(t) {
                        self.graph
                            .add_edge(newcomer, t)
                            .expect("candidate was checked alive, distinct, and fresh");
                    }
                }
            }
        }
        newcomer
    }

    /// A uniformly random peer departs (no repair). Returns the departed
    /// id, or `None` if the overlay is empty.
    pub fn leave<R: Rng>(&mut self, rng: &mut R) -> Option<NodeId> {
        let victim = self.graph.random_node(rng)?;
        self.graph
            .remove_node(victim)
            .expect("random_node returns live nodes");
        Some(victim)
    }

    /// Applies `joins` joins then `leaves` departures.
    pub fn churn<R: Rng>(&mut self, joins: usize, leaves: usize, rng: &mut R) {
        for _ in 0..joins {
            self.join(rng);
        }
        for _ in 0..leaves {
            self.leave(rng);
        }
    }

    /// Size of the connected component containing `node` — the ground
    /// truth the paper reports.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not alive.
    #[must_use]
    pub fn component_size_of(&self, node: NodeId) -> usize {
        census_graph::algo::component_size(&self.graph, node)
    }

    /// Freezes the current membership into a flat CSR snapshot (see
    /// [`Graph::freeze`]). The snapshot is only valid until the next
    /// [`Self::join`]/[`Self::leave`]/[`Self::churn`]; the runners
    /// re-freeze after every membership delta.
    #[must_use]
    pub fn freeze(&self) -> FrozenView {
        self.graph.freeze()
    }
}

impl Topology for DynamicNetwork {
    fn peer_count(&self) -> usize {
        self.graph.peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.graph.contains(node)
    }

    fn degree_of(&self, node: NodeId) -> usize {
        self.graph.degree_of(node)
    }

    #[inline]
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.graph.neighbors_of(node)
    }

    #[inline]
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        self.graph.neighbor_of(node, rng)
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.graph.any_peer(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn balanced_net(n: usize, seed: u64) -> (DynamicNetwork, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::balanced(n, 10, &mut rng);
        (
            DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 }),
            rng,
        )
    }

    #[test]
    fn joins_attach_within_cap() {
        let (mut net, mut rng) = balanced_net(300, 1);
        for _ in 0..100 {
            let id = net.join(&mut rng);
            let d = net.graph().degree(id);
            assert!((1..=10).contains(&d), "join degree {d}");
        }
        assert_eq!(net.size(), 400);
        assert!(net.graph().nodes().all(|v| net.graph().degree(v) <= 10));
    }

    #[test]
    fn leaves_remove_uniformly_without_repair() {
        let (mut net, mut rng) = balanced_net(300, 2);
        let before_edges = net.graph().num_edges();
        for _ in 0..150 {
            assert!(net.leave(&mut rng).is_some());
        }
        assert_eq!(net.size(), 150);
        assert!(net.graph().num_edges() < before_edges);
    }

    #[test]
    fn leave_on_empty_returns_none() {
        let mut net = DynamicNetwork::new(Graph::new(), JoinRule::Balanced { max_degree: 10 });
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(net.leave(&mut rng), None);
    }

    #[test]
    fn preferential_joins_favor_hubs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::barabasi_albert(500, 3, &mut rng);
        let hub = g.nodes().max_by_key(|&v| g.degree(v)).expect("non-empty");
        let hub_degree_before = g.degree(hub);
        let mut net = DynamicNetwork::new(g, JoinRule::PreferentialAttachment { m: 3 });
        for _ in 0..300 {
            net.join(&mut rng);
        }
        let gained_hub = net.graph().degree(hub) - hub_degree_before;
        // A typical original node gains ~ 300*3/500 ~ 2 edges; the hub
        // should gain far more under preferential attachment.
        assert!(gained_hub > 8, "hub gained only {gained_hub} edges");
    }

    #[test]
    fn churn_applies_both_directions() {
        let (mut net, mut rng) = balanced_net(200, 5);
        net.churn(50, 30, &mut rng);
        assert_eq!(net.size(), 220);
    }

    #[test]
    fn component_size_shrinks_under_fragmentation() {
        let (mut net, mut rng) = balanced_net(400, 6);
        for _ in 0..350 {
            net.leave(&mut rng);
        }
        let probe = net.graph().random_node(&mut rng).expect("50 nodes remain");
        let comp = net.component_size_of(probe);
        assert!(comp <= net.size());
    }

    #[test]
    fn topology_delegation() {
        let (net, mut rng) = balanced_net(50, 7);
        assert_eq!(net.peer_count(), 50);
        let peer = net.any_peer(&mut rng).expect("non-empty");
        assert!(net.contains(peer));
        assert!(net.degree_of(peer) >= 1);
        assert!(net.neighbor_of(peer, &mut rng).is_some());
    }

    use census_graph::Graph;
}

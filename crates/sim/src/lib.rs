//! Churn simulation and experiment harness for overlay-census.
//!
//! §5 of the paper evaluates Random Tour and Sample & Collide on overlays
//! of 100,000 nodes, both static and under churn (gradual shrink/growth
//! and catastrophic ±25,000-node events). This crate provides the
//! simulation substrate for those experiments:
//!
//! - [`DynamicNetwork`]: an overlay whose membership changes between
//!   estimation runs — joins follow the generating model's attachment
//!   rule, departures remove uniform nodes *without repair* (§5.1), so
//!   the overlay can fragment and estimates refer to the probing node's
//!   component.
//! - [`Scenario`]: a declarative churn schedule (gradual phases and
//!   sudden events keyed by run index) reproducing §5.3's three
//!   scenarios exactly.
//! - [`runner`]: drives an estimator through a scenario, recording per
//!   run the true component size, the raw estimate, the sliding-window
//!   smoothed estimate, and the message cost — the exact series plotted
//!   in Figures 8–13.
//! - [`faults`]: the §5.3.1 fault-injection harness — a [`faults::FaultPlan`]
//!   layering per-hop message loss, mid-walk crashes (the departing node
//!   takes the probe) and transient stale links over any topology, each
//!   from its own seeded fault stream so walk randomness stays
//!   reproducible, with an optional per-hop retransmission budget.
//! - [`loss`]: single-layer message-loss sugar over [`faults`], plus the
//!   re-exported adaptive trip-time initiator timeout.
//! - [`attacks`]: the Byzantine counterpart of [`faults`] — an
//!   [`attacks::AttackPlan`] subverting a deterministic fraction of peers
//!   that misreport degrees, swallow or reroute walks, and forge
//!   Sample & Collide collisions, with all adversarial randomness drawn
//!   from a dedicated stream so honest walks stay bit-identical.
//! - [`parallel`]: a deterministic replication engine — run `n`
//!   independent replications of an experiment on scoped threads, each
//!   with a SplitMix64-derived RNG stream, merged in replica order so
//!   results never depend on thread scheduling.
//!
//! # Examples
//!
//! ```
//! use census_core::RandomTour;
//! use census_graph::generators;
//! use census_sim::{DynamicNetwork, JoinRule, Scenario, runner::{run_dynamic, RunConfig}};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let g = generators::balanced(500, 10, &mut rng);
//! let mut net = DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 });
//! // Shrink by 250 nodes between runs 20 and 60.
//! let scenario = Scenario::new().remove_gradually(20, 60, 250);
//! let records = run_dynamic(
//!     &mut net,
//!     &RandomTour::new(),
//!     &RunConfig::new(80).with_window(10),
//!     &scenario,
//!     &mut rng,
//! );
//! assert_eq!(records.len(), 80);
//! assert!(records.last().unwrap().true_size < 300.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod faults;
pub mod loss;
pub mod parallel;
pub mod runner;

mod dynamic;
mod scenario;

pub use dynamic::{DynamicNetwork, JoinRule};
pub use scenario::{MembershipDelta, Scenario};

//! Byzantine attack plans: adversarial peers for overlay walks.
//!
//! [`crate::faults`] models honest-but-faulty behaviour — messages drop,
//! peers crash, links go stale. This module models *adversaries*: a
//! fraction of peers that stay protocol-visible but lie. The paper's
//! estimators are exactly the primitives such peers can silently poison:
//!
//! - **degree misreports** skew the Random Tour weight `Σ f(j)/d_j`, the
//!   initiator factor `d_i`, the CTRW sojourn `Exp(1)/d_j`, and the
//!   Metropolis acceptance ratio `min(1, d_u/d_v)` — every place the
//!   protocol trusts a peer's self-reported degree;
//! - **walk swallowing** drops traversing probes, preferentially killing
//!   long tours (survivorship bias, amplified because the adversary
//!   *chooses* to eat);
//! - **walk biasing** routes probes toward colluding neighbours, warping
//!   the sampler's output law;
//! - **collision forgery** fakes Sample & Collide hits, inflating `C_l`
//!   and deflating the size estimate;
//! - **queue flooding** saturates a census service's admission queue with
//!   junk queries (executed by the service layer; the plan only carries
//!   the intensity).
//!
//! The design rules mirror [`crate::faults`]:
//!
//! - the Byzantine *set* is a pure function of the plan's seed: node `v`
//!   is subverted iff a `[0, 1)` value derived from
//!   `stream_seed(StreamDomain::Attack, seed, v)` falls below the
//!   configured fraction — no draws, no ordering sensitivity;
//! - per-traversal decisions (swallow? forge?) draw from a dedicated
//!   counter-addressed [`AttackRng`] stream, *after* the walk RNG has
//!   chosen the honest next hop, so an attack can truncate or redirect a
//!   walk but never perturbs the randomness of walks it leaves alone;
//! - [`AttackPlan::default`] subverts nobody and is provably inert: every
//!   walk through an empty plan's wrapper is bit-identical to the
//!   unwrapped walk (pinned by the workspace bit-identity suites).

use std::sync::atomic::{AtomicU64, Ordering};

use census_graph::{NodeId, Topology};
use census_metrics::{Metric, Recorder};
use census_walk::stream::{stream_seed, StreamDomain};
use rand::Rng;

use crate::parallel::splitmix64;

/// A `Sync` counter-based adversary RNG: a seeded, lock-free stream of
/// uniform `[0, 1)` draws, identical in construction to
/// [`crate::faults::FaultRng`] but fed from its own seed so attack
/// decisions never correlate with fault injection.
#[derive(Debug)]
pub struct AttackRng {
    seed: u64,
    counter: AtomicU64,
}

impl AttackRng {
    /// An attack-decision stream seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed: splitmix64(seed),
            counter: AtomicU64::new(0),
        }
    }

    /// The next uniform draw in `[0, 1)`.
    pub fn next_f64(&self) -> f64 {
        let i = self.counter.fetch_add(1, Ordering::Relaxed);
        let z = splitmix64(self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (z >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Number of draws taken so far.
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

fn assert_probability(p: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&p),
        "{what} probability must lie in [0, 1], got {p}"
    );
}

/// Declarative description of a Byzantine adversary: which fraction of
/// peers is subverted (from which seed) and what each subverted peer
/// does. Plain configuration (`Copy`); [`AttackPlan::apply`] turns it
/// into a live [`AdversarialTopology`] wrapper.
///
/// # Examples
///
/// ```
/// use census_graph::{generators, Topology};
/// use census_sim::attacks::AttackPlan;
///
/// let g = generators::ring(100);
/// let hostile = AttackPlan::new()
///     .with_byzantine(0.2, 7)
///     .with_degree_inflation(10.0)
///     .with_walk_swallow(0.5)
///     .apply(&g);
/// assert_eq!(hostile.peer_count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttackPlan {
    fraction: f64,
    seed: u64,
    inflation: Option<f64>,
    deflation: Option<f64>,
    swallow: Option<f64>,
    bias: Option<f64>,
    forgery: Option<f64>,
    flood: u32,
}

impl AttackPlan {
    /// An empty plan: nobody is subverted, nothing is attacked.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Subverts each peer independently with probability `fraction`,
    /// selected deterministically from the [`StreamDomain::Attack`]
    /// stream over `seed`. The selection is a pure per-node function, so
    /// the same plan marks the same peers on every run and in every
    /// wrapper instance.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    #[must_use]
    pub fn with_byzantine(mut self, fraction: f64, seed: u64) -> Self {
        assert_probability(fraction, "byzantine fraction");
        self.fraction = fraction;
        self.seed = seed;
        self
    }

    /// Subverted peers report their degree multiplied by `factor`
    /// (rounded up). Inflation repels Metropolis walks (the acceptance
    /// ratio divides by the candidate's degree), deflates tour visit
    /// weights, and inflates the initiator factor `d_i` of tours started
    /// at a subverted peer.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0` or degree deflation is already set.
    #[must_use]
    pub fn with_degree_inflation(mut self, factor: f64) -> Self {
        assert!(factor > 1.0, "inflation factor must exceed 1, got {factor}");
        assert!(
            self.deflation.is_none(),
            "a peer cannot inflate and deflate its degree at once"
        );
        self.inflation = Some(factor);
        self
    }

    /// Subverted peers report their degree divided by `factor` (rounded
    /// down, floored at 1 for connected peers). Deflation *attracts*
    /// Metropolis walks — a peer claiming degree 1 is almost always
    /// accepted — concentrating "uniform" samples on the adversary.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0` or degree inflation is already set.
    #[must_use]
    pub fn with_degree_deflation(mut self, factor: f64) -> Self {
        assert!(factor > 1.0, "deflation factor must exceed 1, got {factor}");
        assert!(
            self.inflation.is_none(),
            "a peer cannot inflate and deflate its degree at once"
        );
        self.deflation = Some(factor);
        self
    }

    /// A walk delivered to a subverted peer is dropped with probability
    /// `p` (the peer simply never forwards the probe). The initiator
    /// observes a stuck walk, indistinguishable from an honest fault.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_walk_swallow(mut self, p: f64) -> Self {
        assert_probability(p, "walk swallow");
        self.swallow = Some(p);
        self
    }

    /// A subverted peer holding a walk reroutes it, with probability `p`,
    /// to a colluding (also subverted) neighbour instead of the honest
    /// uniform choice — when it has one; otherwise the honest hop stands.
    /// The honest next-hop draw is still consumed first, so unbiased
    /// hops remain bit-identical to the attack-free walk.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_walk_bias(mut self, p: f64) -> Self {
        assert_probability(p, "walk bias");
        self.bias = Some(p);
        self
    }

    /// A subverted peer asked to confirm a Sample & Collide visit forges
    /// a collision with probability `p` even when the initiator has not
    /// seen it before, inflating `C_l` and deflating the size estimate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_collision_forgery(mut self, p: f64) -> Self {
        assert_probability(p, "collision forgery");
        self.forgery = Some(p);
        self
    }

    /// The adversary submits `n` junk queries against the census
    /// service's admission queue before the honest workload, exercising
    /// its backpressure ledger. Carried by the plan; executed by the
    /// service layer (a topology wrapper cannot submit queries).
    #[must_use]
    pub fn with_queue_flood(mut self, n: u32) -> Self {
        self.flood = n;
        self
    }

    /// The configured Byzantine fraction.
    #[must_use]
    pub fn byzantine_fraction(&self) -> f64 {
        self.fraction
    }

    /// The configured queue-flood intensity (junk queries to submit).
    #[must_use]
    pub fn queue_flood(&self) -> u32 {
        self.flood
    }

    /// Whether the plan attacks nothing at all (no subverted peers and
    /// no queue flood) — the provably-inert configuration.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fraction == 0.0 && self.flood == 0
    }

    /// Whether `node` is subverted under this plan: a pure function of
    /// `(seed, node)`, shared by every wrapper built from the plan.
    #[must_use]
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        if self.fraction <= 0.0 {
            return false;
        }
        let z = stream_seed(StreamDomain::Attack, self.seed, node.index() as u64);
        let u = (z >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        u < self.fraction
    }

    /// Wraps `inner` with this plan's adversary.
    #[must_use]
    pub fn apply<T: Topology>(self, inner: T) -> AdversarialTopology<T> {
        AdversarialTopology {
            inner,
            plan: self,
            rng: AttackRng::new(self.seed ^ 0x4154_5441_434B_2121),
            counters: AttackCounters::default(),
        }
    }
}

/// Lock-free tally of adversarial actions, kept by an
/// [`AdversarialTopology`]. Simulation-side ground truth: a deployed
/// initiator cannot observe any of it, which is exactly why the bias
/// experiments need the ledger.
#[derive(Debug, Default)]
pub struct AttackCounters {
    encounters: AtomicU64,
    swallowed: AtomicU64,
    biased_hops: AtomicU64,
    degree_misreports: AtomicU64,
    forged_collisions: AtomicU64,
}

impl AttackCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value snapshot of the tally.
    #[must_use]
    pub fn snapshot(&self) -> AttackSnapshot {
        AttackSnapshot {
            encounters: self.encounters.load(Ordering::Relaxed),
            swallowed: self.swallowed.load(Ordering::Relaxed),
            biased_hops: self.biased_hops.load(Ordering::Relaxed),
            degree_misreports: self.degree_misreports.load(Ordering::Relaxed),
            forged_collisions: self.forged_collisions.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time values of an [`AttackCounters`] tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct AttackSnapshot {
    /// Walk deliveries that landed on a subverted peer.
    pub encounters: u64,
    /// Walks dropped by a subverted peer (`WalkSwallow`).
    pub swallowed: u64,
    /// Hops rerouted toward a colluder (`WalkBias`).
    pub biased_hops: u64,
    /// Degree queries answered with a lie.
    pub degree_misreports: u64,
    /// Sample & Collide collisions forged out of thin air.
    pub forged_collisions: u64,
}

impl AttackSnapshot {
    /// Charges this tally (usually a delta) to the registry counters
    /// `ByzantineEncounters` / `SwallowedWalks` / `ForgedCollisions` —
    /// the service layer absorbs each query's wrapper tally this way.
    pub fn charge<Rec: Recorder + ?Sized>(&self, recorder: &Rec) {
        recorder.incr(Metric::ByzantineEncounters, self.encounters);
        recorder.incr(Metric::SwallowedWalks, self.swallowed);
        recorder.incr(Metric::ForgedCollisions, self.forged_collisions);
    }

    /// Component-wise difference `self - earlier`, for charging only the
    /// actions since a previous snapshot.
    #[must_use]
    pub fn since(&self, earlier: &AttackSnapshot) -> AttackSnapshot {
        AttackSnapshot {
            encounters: self.encounters - earlier.encounters,
            swallowed: self.swallowed - earlier.swallowed,
            biased_hops: self.biased_hops - earlier.biased_hops,
            degree_misreports: self.degree_misreports - earlier.degree_misreports,
            forged_collisions: self.forged_collisions - earlier.forged_collisions,
        }
    }
}

/// A [`Topology`] wrapper executing an [`AttackPlan`] on every protocol
/// surface a Byzantine peer controls.
///
/// Each hop through [`Topology::neighbor_of`] stages as:
///
/// 1. **honest next-hop choice**: the walk RNG is consumed *exactly
///    once*, before any attack decision, so unattacked walks are
///    bit-identical to the attack-free ones;
/// 2. **bias** (holder is subverted): with the configured probability the
///    probe is rerouted to a colluding neighbour, chosen from the attack
///    stream;
/// 3. **swallow** (destination is subverted): with the configured
///    probability the probe is eaten — the walk engines report
///    [`census_walk::WalkError::Stuck`] (or `Lost`), exactly what the
///    §5.3.1 initiator sees for an honest fault.
///
/// [`Topology::degree_of`] lies at subverted peers (inflation/deflation);
/// [`Topology::neighbors_of`] stays truthful — edges are mutually known,
/// so a peer cannot unilaterally fake its adjacency, only its claims
/// about it. [`Topology::reports_collision`] forges Sample & Collide
/// confirmations. All bookkeeping is lock-free, so the wrapper stays
/// `Sync` and eligible for `parallel::replicate`.
#[derive(Debug)]
pub struct AdversarialTopology<T> {
    inner: T,
    plan: AttackPlan,
    rng: AttackRng,
    counters: AttackCounters,
}

impl<T: Topology> AdversarialTopology<T> {
    /// The wrapped topology.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The plan this wrapper executes.
    #[must_use]
    pub fn plan(&self) -> &AttackPlan {
        &self.plan
    }

    /// Whether `node` is subverted (delegates to the plan's pure
    /// membership function).
    #[must_use]
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        self.plan.is_byzantine(node)
    }

    /// The live attack tally.
    #[must_use]
    pub fn counters(&self) -> &AttackCounters {
        &self.counters
    }

    /// Snapshot of the attack tally.
    #[must_use]
    pub fn attack_snapshot(&self) -> AttackSnapshot {
        self.counters.snapshot()
    }
}

impl<T: Topology> Topology for AdversarialTopology<T> {
    fn peer_count(&self) -> usize {
        self.inner.peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.inner.contains(node)
    }

    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        // Truthful: adjacency is mutually verifiable, so the adversary
        // cannot fake edges — only its *claims* (degree, collisions).
        self.inner.neighbors_of(node)
    }

    fn degree_of(&self, node: NodeId) -> usize {
        let truth = self.inner.degree_of(node);
        if truth == 0 || !self.plan.is_byzantine(node) {
            return truth;
        }
        if let Some(factor) = self.plan.inflation {
            AttackCounters::bump(&self.counters.degree_misreports);
            return (truth as f64 * factor).ceil() as usize;
        }
        if let Some(factor) = self.plan.deflation {
            AttackCounters::bump(&self.counters.degree_misreports);
            return ((truth as f64 / factor).floor() as usize).max(1);
        }
        truth
    }

    // Overrides the slice-indexing default: the walk engines forward
    // through `neighbor_of` precisely so this injection point sits on
    // the path of every hop.
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        // Stage 1 — the walk RNG chooses the honest next hop, exactly
        // once per hop, attacks or not.
        let mut next = self.inner.neighbor_of(node, rng)?;
        // Stage 2 — a subverted holder may reroute toward a colluder.
        if let Some(p) = self.plan.bias {
            if self.plan.is_byzantine(node) && self.rng.next_f64() < p {
                let list = self.inner.neighbors_of(node);
                let colluders = list.iter().filter(|&&v| self.plan.is_byzantine(v));
                let count = colluders.clone().count();
                if count > 0 {
                    let pick = (self.rng.next_f64() * count as f64) as usize;
                    let pick = pick.min(count - 1);
                    next = *colluders
                        .clone()
                        .nth(pick)
                        .expect("pick is bounded by the colluder count");
                    AttackCounters::bump(&self.counters.biased_hops);
                }
            }
        }
        // Stage 3 — a subverted destination may eat the probe.
        if self.plan.is_byzantine(next) {
            AttackCounters::bump(&self.counters.encounters);
            if let Some(p) = self.plan.swallow {
                if self.rng.next_f64() < p {
                    AttackCounters::bump(&self.counters.swallowed);
                    return None;
                }
            }
        }
        Some(next)
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.inner.any_peer(rng)
    }

    fn reports_collision(&self, node: NodeId, locally_marked: bool) -> bool {
        let honest = self.inner.reports_collision(node, locally_marked);
        if honest || !self.plan.is_byzantine(node) {
            return honest;
        }
        if let Some(p) = self.plan.forgery {
            if self.rng.next_f64() < p {
                AttackCounters::bump(&self.counters.forged_collisions);
                return true;
            }
        }
        honest
    }
}

// Compile-time check: the adversary wrapper must stay `Sync` (same
// contract as the fault wrappers, same reason).
fn _assert_sync<T: Sync>() {}
fn _attack_wrappers_are_sync() {
    _assert_sync::<AttackRng>();
    _assert_sync::<AdversarialTopology<census_graph::Graph>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_core::{RandomTour, SampleCollide, SizeEstimator};
    use census_graph::generators;
    use census_metrics::{Registry, RunCtx};
    use census_sampling::{CtrwSampler, MetropolisSampler, Sampler};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn attack_rng_is_deterministic_and_uniform() {
        let a = AttackRng::new(9);
        let b = AttackRng::new(9);
        let xs: Vec<f64> = (0..1_000).map(|_| a.next_f64()).collect();
        let ys: Vec<f64> = (0..1_000).map(|_| b.next_f64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "uniform mean, got {mean}");
        assert_eq!(a.draws(), 1_000);
    }

    #[test]
    fn byzantine_selection_is_pure_and_tracks_the_fraction() {
        let plan = AttackPlan::new().with_byzantine(0.3, 11);
        let g = generators::ring(10_000);
        let marked = g.nodes().filter(|&v| plan.is_byzantine(v)).count();
        let frac = marked as f64 / 10_000.0;
        assert!(
            (frac - 0.3).abs() < 0.02,
            "marked fraction {frac} far from 0.3"
        );
        // Purity: two wrappers over different topologies agree node by node.
        let wrapped = plan.apply(&g);
        for v in g.nodes().take(100) {
            assert_eq!(plan.is_byzantine(v), wrapped.is_byzantine(v));
        }
        // A different seed marks a different set.
        let other = AttackPlan::new().with_byzantine(0.3, 12);
        assert!(g
            .nodes()
            .any(|v| plan.is_byzantine(v) != other.is_byzantine(v)));
    }

    #[test]
    fn empty_plan_is_transparent() {
        let g = generators::ring(50);
        let hostile = AttackPlan::new().apply(&g);
        assert!(hostile.plan().is_empty());
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let plain = RandomTour::new()
                .estimate_with(&mut RunCtx::new(&g, &mut a), NodeId::new(0))
                .expect("connected");
            let wrapped = RandomTour::new()
                .estimate_with(&mut RunCtx::new(&hostile, &mut b), NodeId::new(0))
                .expect("no adversaries configured");
            assert_eq!(plain, wrapped);
        }
        assert_eq!(hostile.attack_snapshot(), AttackSnapshot::default());
        assert_eq!(hostile.counters().snapshot(), AttackSnapshot::default());
    }

    #[test]
    fn unattacked_walks_are_bit_identical_under_pure_degree_lies() {
        // Degree misreports alter estimates, never trajectories: the walk
        // RNG stream (and hence every sampled node sequence) is untouched.
        let g = generators::complete(30);
        let hostile = AttackPlan::new()
            .with_byzantine(0.4, 3)
            .with_degree_inflation(8.0)
            .apply(&g);
        let sampler = CtrwSampler::new(4.0);
        let start = g.nodes().next().expect("non-empty");
        for i in 0..20u64 {
            let mut a = SmallRng::seed_from_u64(100 + i);
            let mut b = SmallRng::seed_from_u64(100 + i);
            let plain = sampler.sample(&g, start, &mut a);
            let attacked = sampler.sample(&hostile, start, &mut b);
            // Trajectory identical; only the *sojourn drains* differ, so
            // hop counts can diverge — but the RNG positions must match
            // draw for draw if the hop counts agree.
            if let (Ok(p), Ok(q)) = (&plain, &attacked) {
                if p.hops == q.hops {
                    assert_eq!(p.node, q.node, "walk {i} trajectory diverged");
                }
            }
        }
        assert!(hostile.attack_snapshot().degree_misreports > 0);
    }

    #[test]
    fn degree_lies_are_what_they_claim() {
        let g = generators::complete(11); // every degree is 10
        let plan = AttackPlan::new().with_byzantine(0.5, 21);
        let byz = g
            .nodes()
            .find(|&v| plan.is_byzantine(v))
            .expect("half the clique is subverted");
        let honest = g
            .nodes()
            .find(|&v| !plan.is_byzantine(v))
            .expect("half the clique is honest");

        let inflating = plan.with_degree_inflation(3.0).apply(&g);
        assert_eq!(inflating.degree_of(byz), 30);
        assert_eq!(inflating.degree_of(honest), 10);

        let deflating = plan.with_degree_deflation(4.0).apply(&g);
        assert_eq!(deflating.degree_of(byz), 2);
        assert_eq!(deflating.degree_of(honest), 10);
        // The neighbour list never lies.
        assert_eq!(inflating.neighbors_of(byz).len(), 10);
    }

    #[test]
    fn swallowed_walks_strand_and_are_counted() {
        let g = generators::complete(20);
        let hostile = AttackPlan::new()
            .with_byzantine(0.3, 5)
            .with_walk_swallow(0.8)
            .apply(&g);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut failures = 0u64;
        for _ in 0..100 {
            if RandomTour::new()
                .estimate_with(&mut RunCtx::new(&hostile, &mut rng), NodeId::new(0))
                .is_err()
            {
                failures += 1;
            }
        }
        let snap = hostile.attack_snapshot();
        assert!(failures > 30, "swallowing broke only {failures}/100 tours");
        assert_eq!(snap.swallowed, failures, "every failure is one swallow");
        assert!(snap.encounters >= snap.swallowed);
    }

    #[test]
    fn walk_bias_herds_walks_toward_colluders() {
        // A clique where 30% collude and always reroute: deliveries to
        // Byzantine peers should far exceed the honest-walk share.
        let g = generators::complete(40);
        let plan = AttackPlan::new().with_byzantine(0.3, 17);
        let hostile = plan.with_walk_bias(1.0).apply(&g);
        let honest_frac = g.nodes().filter(|&v| plan.is_byzantine(v)).count() as f64 / 40.0;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits = 0u64;
        let runs = 2_000u64;
        let start = g
            .nodes()
            .find(|&v| plan.is_byzantine(v))
            .expect("somebody colludes");
        for _ in 0..runs {
            let next = hostile
                .neighbor_of(start, &mut rng)
                .expect("clique is connected");
            if plan.is_byzantine(next) {
                hits += 1;
            }
        }
        let observed = hits as f64 / runs as f64;
        assert!(
            observed > honest_frac + 0.3,
            "bias should concentrate deliveries on colluders: {observed} vs honest {honest_frac}"
        );
        assert!(hostile.attack_snapshot().biased_hops > 0);
    }

    #[test]
    fn collision_forgery_deflates_sample_and_collide() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::balanced(400, 8, &mut rng);
        let start = g.nodes().next().expect("non-empty");
        let estimator = SampleCollide::new(CtrwSampler::new(20.0), 8);
        let honest = (0..10)
            .map(|i| {
                let mut r = SmallRng::seed_from_u64(40 + i);
                estimator
                    .estimate_with(&mut RunCtx::new(&g, &mut r), start)
                    .expect("connected")
                    .value
            })
            .sum::<f64>()
            / 10.0;
        let hostile = AttackPlan::new()
            .with_byzantine(0.25, 6)
            .with_collision_forgery(0.9)
            .apply(&g);
        let attacked = (0..10)
            .map(|i| {
                let mut r = SmallRng::seed_from_u64(40 + i);
                estimator
                    .estimate_with(&mut RunCtx::new(&hostile, &mut r), start)
                    .expect("forgery only accelerates termination")
                    .value
            })
            .sum::<f64>()
            / 10.0;
        assert!(
            attacked < honest / 2.0,
            "forged collisions must deflate the estimate: {attacked} vs honest {honest}"
        );
        assert!(hostile.attack_snapshot().forged_collisions > 0);
    }

    #[test]
    fn degree_deflation_attracts_metropolis_walks() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = generators::balanced(300, 8, &mut rng);
        let plan = AttackPlan::new().with_byzantine(0.2, 31);
        let hostile = plan.with_degree_deflation(8.0).apply(&g);
        let sampler = MetropolisSampler::new(60);
        let start = g.nodes().next().expect("non-empty");
        let byz_frac =
            g.nodes().filter(|&v| plan.is_byzantine(v)).count() as f64 / g.peer_count() as f64;
        let runs = 600u64;
        let mut hostile_hits = 0u64;
        for i in 0..runs {
            let mut r = SmallRng::seed_from_u64(1_000 + i);
            let s = sampler.sample(&hostile, start, &mut r).expect("connected");
            if plan.is_byzantine(s.node) {
                hostile_hits += 1;
            }
        }
        let attacked_frac = hostile_hits as f64 / runs as f64;
        assert!(
            attacked_frac > byz_frac * 1.5,
            "deflation should over-sample the adversary: {attacked_frac} vs population {byz_frac}"
        );
    }

    #[test]
    fn snapshot_charge_and_since_round_trip() {
        let reg = Registry::new();
        let a = AttackSnapshot {
            encounters: 10,
            swallowed: 4,
            biased_hops: 3,
            degree_misreports: 7,
            forged_collisions: 2,
        };
        let b = AttackSnapshot {
            encounters: 4,
            swallowed: 1,
            biased_hops: 1,
            degree_misreports: 2,
            forged_collisions: 0,
        };
        let delta = a.since(&b);
        delta.charge(&reg);
        assert_eq!(reg.counter(Metric::ByzantineEncounters), 6);
        assert_eq!(reg.counter(Metric::SwallowedWalks), 3);
        assert_eq!(reg.counter(Metric::ForgedCollisions), 2);
        let json = serde_json::to_string(&delta).expect("serialises");
        let back: AttackSnapshot = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, delta);
    }

    #[test]
    #[should_panic(expected = "cannot inflate and deflate")]
    fn conflicting_degree_lies_are_rejected() {
        let _ = AttackPlan::new()
            .with_degree_inflation(2.0)
            .with_degree_deflation(2.0);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn out_of_range_fraction_is_rejected() {
        let _ = AttackPlan::new().with_byzantine(1.5, 0);
    }

    #[test]
    fn plan_accessors_round_trip() {
        let plan = AttackPlan::new()
            .with_byzantine(0.1, 9)
            .with_queue_flood(32);
        assert!((plan.byzantine_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(plan.queue_flood(), 32);
        assert!(!plan.is_empty());
        let g = generators::ring(5);
        let hostile = plan.apply(&g);
        assert_eq!(hostile.inner().peer_count(), 5);
        assert!(hostile.contains(NodeId::new(0)));
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(hostile.any_peer(&mut rng).is_some());
    }
}

//! Message loss under walks (§5.3.1 extension).
//!
//! The paper's simulations "did not allow a departing node to leave the
//! system with the probing message", but §5.3.1 sketches how a real
//! deployment would cope: declare a probe lost when it has not returned
//! within a timeout set adaptively from past trip times ("the average
//! trip time, plus a few multiples of the trip time standard deviation").
//!
//! [`LossyTopology`] is the loss half of that sketch — a single-layer
//! shorthand over the general [`crate::faults::FaultPlan`] harness that
//! drops the walker at each hop with a configurable probability. The
//! timeout half lives in [`census_core::AdaptiveTimeout`] (re-exported
//! here for compatibility), and the full initiator loop — adaptive
//! budgets, bounded retries, loss classification — in
//! [`census_core::Supervised`].

use census_graph::{NodeId, Topology};
use rand::Rng;

use crate::faults::{FaultPlan, FaultSnapshot, FaultyTopology};

pub use census_core::AdaptiveTimeout;

/// A topology wrapper that loses the walker with probability
/// `drop_probability` at each hop.
///
/// A drop is surfaced as the current node having "no neighbour", which
/// the walk engines report as [`census_walk::WalkError::Stuck`] — the
/// initiator sees a walk that never comes back, exactly the §5.3.1
/// failure mode. Pair with [`AdaptiveTimeout`] (or
/// [`census_core::RandomTour::with_timeout`]) and retry, or wrap the
/// estimator in [`census_core::Supervised`] which does both.
///
/// This is sugar for a [`FaultPlan`] with a single message-loss layer;
/// use the plan directly to combine loss with crashes, stale links, or a
/// per-hop retransmission budget.
#[derive(Debug)]
pub struct LossyTopology<T> {
    faulty: FaultyTopology<T>,
    drop_probability: f64,
}

impl<T: Topology> LossyTopology<T> {
    /// Wraps `inner`, dropping walks with probability `drop_probability`
    /// per hop; `fault_seed` seeds the fault process. Loss is an
    /// environment property, so the wrapper carries its own fault RNG
    /// rather than entangling walk randomness with fault randomness
    /// (estimates stay reproducible for a given walk seed).
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is not in `[0, 1]`. Certain loss
    /// (`1.0`) is accepted — it makes every walk fail, which is a
    /// legitimate endpoint for exercising give-up paths.
    #[must_use]
    pub fn new(inner: T, drop_probability: f64, fault_seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must lie in [0, 1]"
        );
        Self {
            faulty: FaultPlan::new()
                .with_message_loss(drop_probability, fault_seed)
                .apply(inner),
            drop_probability,
        }
    }

    /// The wrapped topology.
    #[must_use]
    pub fn inner(&self) -> &T {
        self.faulty.inner()
    }

    /// The configured per-hop drop probability.
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Snapshot of the fault tally (drops and walks killed so far).
    #[must_use]
    pub fn fault_snapshot(&self) -> FaultSnapshot {
        self.faulty.fault_snapshot()
    }
}

impl<T: Topology> Topology for LossyTopology<T> {
    fn peer_count(&self) -> usize {
        self.faulty.peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.faulty.contains(node)
    }

    fn degree_of(&self, node: NodeId) -> usize {
        self.faulty.degree_of(node)
    }

    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.faulty.neighbors_of(node)
    }

    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        self.faulty.neighbor_of(node, rng)
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.faulty.any_peer(rng)
    }

    fn reports_collision(&self, node: NodeId, locally_marked: bool) -> bool {
        self.faulty.reports_collision(node, locally_marked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_core::{RandomTour, RunCtx, SizeEstimator};
    use census_graph::generators;
    use census_stats::OnlineMoments;
    use census_walk::WalkError;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_loss_is_transparent() {
        let g = generators::complete(20);
        let lossy = LossyTopology::new(&g, 0.0, 7);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let est = RandomTour::new()
                .estimate_with(
                    &mut RunCtx::new(&lossy, &mut rng),
                    g.nodes().next().expect("non-empty"),
                )
                .expect("no loss, no failure");
            assert!(est.value > 0.0);
        }
        assert_eq!(lossy.fault_snapshot().walks_killed, 0);
    }

    #[test]
    fn high_loss_breaks_most_walks() {
        // Per-hop survival 0.5: even the shortest possible tour (2 hops)
        // survives only 25% of the time, longer ones almost never.
        let g = generators::ring(100);
        let lossy = LossyTopology::new(&g, 0.5, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        let failures = (0..200)
            .filter(|_| {
                matches!(
                    RandomTour::new().estimate_with(
                        &mut RunCtx::new(&lossy, &mut rng),
                        g.nodes().next().expect("non-empty"),
                    ),
                    Err(census_core::EstimateError::Walk(WalkError::Stuck(_)))
                )
            })
            .count();
        assert!(failures > 150, "only {failures}/200 walks were lost");
        assert_eq!(lossy.fault_snapshot().walks_killed, failures as u64);
    }

    #[test]
    fn survivorship_bias_matches_truncated_tour_law() {
        // Loss truncates *long* tours preferentially, so "retry until a
        // tour completes" is biased low. On K_n the RT estimate equals
        // the tour length τ = 2 + Geometric(p), p = 1/(n-1); with per-hop
        // survival s the surviving-tour mean is E[τ s^τ]/E[s^τ], computed
        // here by direct summation and compared against simulation.
        let n = 30usize;
        let s = 0.98f64;
        let p = 1.0 / (n as f64 - 1.0);
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for k in 2..10_000u32 {
            let pk = (1.0 - p).powi(k as i32 - 2) * p;
            let w = pk * s.powi(k as i32);
            num += f64::from(k) * w;
            den += w;
        }
        let predicted = num / den;

        let g = generators::complete(n);
        let lossy = LossyTopology::new(&g, 1.0 - s, 9);
        let mut rng = SmallRng::seed_from_u64(3);
        let rt = RandomTour::new();
        let mut values = Vec::new();
        while values.len() < 4_000 {
            if let Ok(est) = rt.estimate_with(
                &mut RunCtx::new(&lossy, &mut rng),
                g.nodes().next().expect("non-empty"),
            ) {
                values.push(est.value);
            }
        }
        let m: OnlineMoments = values.into_iter().collect();
        assert!(
            m.mean() < n as f64 * 0.85,
            "survivors must be biased low, got {}",
            m.mean()
        );
        let err = (m.mean() - predicted).abs() / m.standard_error();
        assert!(
            err < 4.0,
            "mean {} vs truncated-law prediction {predicted}",
            m.mean()
        );
    }

    #[test]
    fn certain_loss_is_accepted_and_kills_every_walk() {
        let g = generators::ring(5);
        let lossy = LossyTopology::new(&g, 1.0, 1);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..5 {
            assert!(RandomTour::new()
                .estimate_with(
                    &mut RunCtx::new(&lossy, &mut rng),
                    g.nodes().next().expect("non-empty"),
                )
                .is_err());
        }
        assert_eq!(lossy.fault_snapshot().walks_killed, 5);
    }

    #[test]
    #[should_panic(expected = "lie in [0, 1]")]
    fn out_of_range_loss_is_rejected() {
        let g = generators::ring(5);
        let _ = LossyTopology::new(&g, 1.5, 1);
    }
}

//! Message loss and adaptive timeouts (§5.3.1 extension).
//!
//! The paper's simulations "did not allow a departing node to leave the
//! system with the probing message", but §5.3.1 sketches how a real
//! deployment would cope: declare a probe lost when it has not returned
//! within a timeout set adaptively from past trip times ("the average
//! trip time, plus a few multiples of the trip time standard deviation").
//! This module implements that sketch:
//!
//! - [`LossyTopology`] drops a walk at each hop with a configurable
//!   probability, modelling a peer departing while holding the message;
//! - [`AdaptiveTimeout`] tracks completed trip times and recommends the
//!   paper's `mean + k·std` step budget.

use census_graph::{NodeId, Topology};
use census_stats::OnlineMoments;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// A topology wrapper that loses the walker with probability
/// `drop_probability` at each hop.
///
/// A drop is surfaced as the current node having "no neighbour", which
/// the walk engines report as [`census_walk::WalkError::Stuck`] — the
/// initiator sees a walk that never comes back, exactly the §5.3.1
/// failure mode. Pair with [`AdaptiveTimeout`] (or
/// [`census_core::RandomTour::with_timeout`]) and retry.
#[derive(Debug)]
pub struct LossyTopology<T> {
    inner: T,
    drop_probability: f64,
    // Loss is an environment property, so the wrapper carries its own
    // fault RNG rather than entangling walk randomness with fault
    // randomness (estimates stay reproducible for a given walk seed).
    faults: RefCell<SmallRng>,
}

impl<T: Topology> LossyTopology<T> {
    /// Wraps `inner`, dropping walks with probability `drop_probability`
    /// per hop; `fault_seed` seeds the fault process.
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is not in `[0, 1)`.
    #[must_use]
    pub fn new(inner: T, drop_probability: f64, fault_seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_probability),
            "drop probability must lie in [0, 1)"
        );
        Self {
            inner,
            drop_probability,
            faults: RefCell::new(SmallRng::seed_from_u64(fault_seed)),
        }
    }

    /// The wrapped topology.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The configured per-hop drop probability.
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }
}

impl<T: Topology> Topology for LossyTopology<T> {
    fn peer_count(&self) -> usize {
        self.inner.peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.inner.contains(node)
    }

    fn degree_of(&self, node: NodeId) -> usize {
        self.inner.degree_of(node)
    }

    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.inner.neighbors_of(node)
    }

    // Overrides the trait's slice-indexing default: the walk engines
    // forward through `neighbor_of` precisely so that this fault
    // injection point stays on the path of every hop.
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        if self.faults.borrow_mut().random::<f64>() < self.drop_probability {
            return None; // The probe message is lost at this hop.
        }
        self.inner.neighbor_of(node, rng)
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.inner.any_peer(rng)
    }
}

/// Adaptive initiator-side timeout from past trip times (§5.3.1: "set
/// this time-out to the average trip time, plus a few multiples of the
/// trip time standard deviation ... estimated adaptively from past trip
/// time measurements").
#[derive(Debug, Clone)]
pub struct AdaptiveTimeout {
    trips: OnlineMoments,
    multiplier: f64,
    initial: u64,
}

impl AdaptiveTimeout {
    /// Creates the tracker; until two trips complete, [`Self::budget`]
    /// returns `initial`. `multiplier` is the "few multiples" `k`.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not positive or `initial` is zero.
    #[must_use]
    pub fn new(initial: u64, multiplier: f64) -> Self {
        assert!(initial > 0, "initial budget must be positive");
        assert!(multiplier > 0.0, "multiplier must be positive");
        Self {
            trips: OnlineMoments::new(),
            multiplier,
            initial,
        }
    }

    /// Records a completed trip's hop count.
    pub fn record(&mut self, hops: u64) {
        self.trips.push(hops as f64);
    }

    /// The recommended step budget: `mean + k·std` over recorded trips,
    /// or the initial budget before enough history exists.
    #[must_use]
    pub fn budget(&self) -> u64 {
        if self.trips.count() < 2 {
            return self.initial;
        }
        let b = self.trips.mean() + self.multiplier * self.trips.sample_std();
        b.ceil().max(1.0) as u64
    }

    /// Number of recorded trips.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.trips.count()
    }
}

#[cfg(test)]
mod tests {
    // The deprecated context-free shims are exercised deliberately: these
    // tests pin that they keep producing the historical walks.
    #![allow(deprecated)]

    use super::*;
    use census_core::{RandomTour, SizeEstimator};
    use census_graph::generators;
    use census_walk::WalkError;
    use rand::rngs::SmallRng;

    #[test]
    fn zero_loss_is_transparent() {
        let g = generators::complete(20);
        let lossy = LossyTopology::new(&g, 0.0, 7);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let est = RandomTour::new()
                .estimate(&lossy, g.nodes().next().expect("non-empty"), &mut rng)
                .expect("no loss, no failure");
            assert!(est.value > 0.0);
        }
    }

    #[test]
    fn high_loss_breaks_most_walks() {
        // Per-hop survival 0.5: even the shortest possible tour (2 hops)
        // survives only 25% of the time, longer ones almost never.
        let g = generators::ring(100);
        let lossy = LossyTopology::new(&g, 0.5, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        let failures = (0..200)
            .filter(|_| {
                matches!(
                    RandomTour::new().estimate(
                        &lossy,
                        g.nodes().next().expect("non-empty"),
                        &mut rng
                    ),
                    Err(census_core::EstimateError::Walk(WalkError::Stuck(_)))
                )
            })
            .count();
        assert!(failures > 150, "only {failures}/200 walks were lost");
    }

    #[test]
    fn survivorship_bias_matches_truncated_tour_law() {
        // Loss truncates *long* tours preferentially, so "retry until a
        // tour completes" is biased low. On K_n the RT estimate equals
        // the tour length τ = 2 + Geometric(p), p = 1/(n-1); with per-hop
        // survival s the surviving-tour mean is E[τ s^τ]/E[s^τ], computed
        // here by direct summation and compared against simulation.
        let n = 30usize;
        let s = 0.98f64;
        let p = 1.0 / (n as f64 - 1.0);
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for k in 2..10_000u32 {
            let pk = (1.0 - p).powi(k as i32 - 2) * p;
            let w = pk * s.powi(k as i32);
            num += f64::from(k) * w;
            den += w;
        }
        let predicted = num / den;

        let g = generators::complete(n);
        let lossy = LossyTopology::new(&g, 1.0 - s, 9);
        let mut rng = SmallRng::seed_from_u64(3);
        let rt = RandomTour::new();
        let mut values = Vec::new();
        while values.len() < 4_000 {
            if let Ok(est) = rt.estimate(&lossy, g.nodes().next().expect("non-empty"), &mut rng) {
                values.push(est.value);
            }
        }
        let m: OnlineMoments = values.into_iter().collect();
        assert!(
            m.mean() < n as f64 * 0.85,
            "survivors must be biased low, got {}",
            m.mean()
        );
        let err = (m.mean() - predicted).abs() / m.standard_error();
        assert!(
            err < 4.0,
            "mean {} vs truncated-law prediction {predicted}",
            m.mean()
        );
    }

    #[test]
    fn adaptive_timeout_learns_trip_scale() {
        let mut t = AdaptiveTimeout::new(1_000, 3.0);
        assert_eq!(t.budget(), 1_000);
        for hops in [10, 12, 9, 11, 10, 13, 8] {
            t.record(hops);
        }
        let b = t.budget();
        assert!(
            (10..=20).contains(&b),
            "budget {b} should be near mean+3std of ~10-hop trips"
        );
        assert_eq!(t.observations(), 7);
    }

    #[test]
    #[should_panic(expected = "lie in [0, 1)")]
    fn certain_loss_is_rejected() {
        let g = generators::ring(5);
        let _ = LossyTopology::new(&g, 1.0, 1);
    }

    use census_stats::OnlineMoments;
}

//! Deterministic parallel replication of experiments.
//!
//! The paper plots every static figure as three independent replications
//! ("Estimation #1..#3") and the benches want more. Replications share no
//! state, so they parallelise perfectly — the only subtlety is keeping
//! the output *deterministic*: the result must depend on the replica
//! index and the base seed alone, never on thread scheduling.
//!
//! [`replicate`] guarantees that by construction:
//!
//! - each replica gets its own RNG seed derived from the base seed with
//!   the domain-tagged SplitMix64 derivation of [`census_walk::stream`]
//!   (tag [`StreamDomain::Replica`], so replica streams can never collide
//!   with service-query or frontier-walk streams sharing the same base
//!   seed), carried in a [`Replica`] handle;
//! - results are merged by joining the scoped threads in replica order,
//!   so the returned `Vec` is indexed by replica regardless of which
//!   thread finished first.
//!
//! [`replicate_tour_frontiers`] additionally batches each replica's
//! Random Tours into one lock-step frontier
//! ([`census_walk::frontier::tour_frontier`]) — same estimates, bit for
//! bit, as running the tours serially, but with the replica's memory
//! stalls overlapped across walks.
//!
//! Built on [`std::thread::scope`], so closures may borrow the
//! experiment's topology and estimator from the caller's stack — no
//! external dependency needed.
//!
//! # Examples
//!
//! ```
//! use census_sim::parallel::replicate;
//!
//! let squares = replicate(4, 7, |r| (r.index * r.index, r.seed));
//! assert_eq!(squares.len(), 4);
//! assert_eq!(squares[2].0, 4);
//! // Seeds are a pure function of (base_seed, index): re-running is
//! // bit-identical.
//! assert_eq!(replicate(4, 7, |r| r.seed), squares.iter().map(|s| s.1).collect::<Vec<_>>());
//! ```

use census_core::{Estimate, EstimateError, SizeEstimator, StepBudgeted};
use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, Registry};
use census_walk::frontier::{tour_frontier_with, FrontierMode, TourFate, TourSpec};
use census_walk::stream::{stream_seed, SplitMix64, StreamDomain};
use census_walk::WalkError;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::runner::{run_dynamic, run_static, RunConfig, RunRecord};
use crate::{DynamicNetwork, Scenario};

/// One replica's identity within a [`replicate`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replica {
    /// Replica index, `0..n_replicas`.
    pub index: u64,
    /// The SplitMix64-derived seed of this replica's RNG stream.
    pub seed: u64,
}

impl Replica {
    /// This replica's dedicated `SmallRng`, seeded from [`Replica::seed`].
    #[must_use]
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }
}

/// SplitMix64 output function (Steele, Lea & Flood; the finaliser Vigna
/// recommends for seeding other generators). Maps consecutive inputs to
/// well-decorrelated outputs.
///
/// Thin re-export shim over the canonical
/// [`census_walk::stream::splitmix64`], kept here because the fault
/// models and older call sites import it from this module.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    census_walk::stream::splitmix64(state)
}

/// The per-replica seed stream: replica `i` of a run with `base_seed`
/// gets `stream_seed(StreamDomain::Replica, base_seed, i)` — the
/// domain-tagged derivation of [`census_walk::stream`], so a replica and
/// a service query (or frontier walk) with equal `(base_seed, index)`
/// can no longer land on the same seed.
#[must_use]
pub fn replica_seed(base_seed: u64, index: u64) -> u64 {
    stream_seed(StreamDomain::Replica, base_seed, index)
}

/// Runs `f` once per replica on scoped threads and returns the results in
/// replica order.
///
/// Determinism contract: `f` must derive all randomness from its
/// [`Replica`] argument (or other deterministic inputs); under that
/// contract the output is byte-identical across runs and independent of
/// thread scheduling, because results are merged by replica index.
///
/// # Panics
///
/// Panics if `n_replicas` is zero or a replica thread panics.
pub fn replicate<T, F>(n_replicas: u64, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Replica) -> T + Sync,
{
    assert!(n_replicas > 0, "need at least one replication");
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n_replicas)
            .map(|index| {
                let replica = Replica {
                    index,
                    seed: replica_seed(base_seed, index),
                };
                scope.spawn(move || f(replica))
            })
            .collect();
        // Deterministic merge: join in spawn (= replica) order.
        handles
            .into_iter()
            .map(|h| h.join().expect("replication thread panicked"))
            .collect()
    })
}

/// [`replicate`] with per-replica metric recording: each replica's
/// closure receives its own fresh [`Registry`] alongside the [`Replica`]
/// handle, and the registries are merged into one by absorbing them in
/// replica (= spawn) order after all threads joined.
///
/// The serial, ordered merge makes the returned registry fully
/// deterministic — counter totals are order-independent anyway, and the
/// histogram f64 sums are accumulated in replica order, so even their
/// floating-point rounding is bit-identical across runs regardless of
/// thread scheduling.
///
/// # Panics
///
/// Panics if `n_replicas` is zero or a replica thread panics.
pub fn replicate_recorded<T, F>(n_replicas: u64, base_seed: u64, f: F) -> (Vec<T>, Registry)
where
    T: Send,
    F: Fn(Replica, &Registry) -> T + Sync,
{
    assert!(n_replicas > 0, "need at least one replication");
    let merged = Registry::new();
    let results = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n_replicas)
            .map(|index| {
                let replica = Replica {
                    index,
                    seed: replica_seed(base_seed, index),
                };
                scope.spawn(move || {
                    let local = Registry::new();
                    let out = f(replica, &local);
                    (out, local)
                })
            })
            .collect();
        // Deterministic merge: join and absorb in spawn (= replica)
        // order, never in completion order.
        handles
            .into_iter()
            .map(|h| {
                let (out, local) = h.join().expect("replication thread panicked");
                merged.absorb(&local);
                out
            })
            .collect()
    });
    (results, merged)
}

/// [`replicate`] over [`run_static`]: `n_replicas` independent record
/// series of the same estimator on the same static overlay, each driven
/// by its own seed stream.
///
/// # Panics
///
/// Propagates the panics of [`run_static`] and [`replicate`].
pub fn replicate_static<E>(
    net: &DynamicNetwork,
    estimator: &E,
    initiator: NodeId,
    runs: u64,
    n_replicas: u64,
    base_seed: u64,
) -> Vec<Vec<RunRecord>>
where
    E: SizeEstimator + Sync,
{
    replicate(n_replicas, base_seed, |r| {
        let mut rng = r.rng();
        run_static(net, estimator, initiator, runs, &mut rng)
    })
}

/// [`replicate`] over [`run_dynamic`]: each replica clones the starting
/// overlay and evolves it independently through the scenario with its own
/// seed stream (churn is part of the replicated randomness, as in the
/// paper's three dynamic replications).
///
/// # Panics
///
/// Propagates the panics of [`run_dynamic`] and [`replicate`].
pub fn replicate_dynamic<E>(
    net: &DynamicNetwork,
    estimator: &E,
    config: &RunConfig,
    scenario: &Scenario,
    n_replicas: u64,
    base_seed: u64,
) -> Vec<Vec<RunRecord>>
where
    E: StepBudgeted + Sync,
{
    replicate(n_replicas, base_seed, |r| {
        let mut rng = r.rng();
        let mut net = net.clone();
        run_dynamic(&mut net, estimator, config, scenario, &mut rng)
    })
}

/// [`replicate_recorded`] over *batched* Random Tours: each replica
/// launches `tours` tours from `initiator` as one lock-step frontier
/// ([`census_walk::frontier::tour_frontier`]) instead of a serial loop,
/// and converts each tour's fate into the §3.1 estimate
/// `d(initiator) · Σ f(X_k)/d(X_k)`.
///
/// Walk `w` of replica `r` draws from the private stream
/// `stream_seed(StreamDomain::FrontierWalk, r.seed, w)`, so every
/// estimate is bit-identical to running the same stream through
/// [`census_core::RandomTour::estimate_sum_with`] serially — batching
/// changes memory behaviour, never results. Per-tour costs are charged to
/// the merged registry exactly as the serial engine charges them
/// (`TourHops` per hop, one of `ToursCompleted`/`ToursLost`/
/// `WalkTimeouts` per tour, `TourLength` per completed tour), plus the
/// frontier's own `WalkBatchRounds`/`BatchOccupancy` shape metrics.
///
/// Failed tours surface as `Err(EstimateError::Walk(_))` entries in their
/// replica's slot, like the serial estimator would return them.
///
/// # Panics
///
/// Panics if `tours` or `n_replicas` is zero, or if `initiator` is not a
/// live member of `topology`.
pub fn replicate_tour_frontiers<T, F>(
    topology: &T,
    initiator: NodeId,
    f: F,
    tours: u64,
    max_steps: Option<u64>,
    n_replicas: u64,
    base_seed: u64,
) -> (Vec<Vec<Result<Estimate, EstimateError>>>, Registry)
where
    T: Topology + Sync + ?Sized,
    F: Fn(NodeId) -> f64 + Sync,
{
    replicate_tour_frontiers_with(
        topology,
        initiator,
        f,
        tours,
        max_steps,
        n_replicas,
        base_seed,
        FrontierMode::default(),
    )
}

/// [`replicate_tour_frontiers`] with an explicit frontier execution
/// mode. The serial bit-identity guarantee above holds for any
/// [`FrontierMode::Exact`] tuning; [`FrontierMode::FastStatEq`] keeps the
/// estimates unbiased and the per-tour accounting identical, but the
/// individual tours are no longer bit-comparable to serial streams (each
/// replica's frontier drains one pooled stream — see `census-walk`'s
/// frontier docs). Replica results remain fully deterministic in
/// `base_seed` either way.
///
/// # Panics
///
/// As [`replicate_tour_frontiers`].
#[allow(clippy::too_many_arguments)]
pub fn replicate_tour_frontiers_with<T, F>(
    topology: &T,
    initiator: NodeId,
    f: F,
    tours: u64,
    max_steps: Option<u64>,
    n_replicas: u64,
    base_seed: u64,
    mode: FrontierMode,
) -> (Vec<Vec<Result<Estimate, EstimateError>>>, Registry)
where
    T: Topology + Sync + ?Sized,
    F: Fn(NodeId) -> f64 + Sync,
{
    assert!(tours > 0, "need at least one tour per replica");
    assert!(topology.contains(initiator), "tour initiator must be alive");
    let degree = topology.degree_of(initiator) as f64;
    replicate_recorded(n_replicas, base_seed, |r, reg| {
        let mut specs: Vec<TourSpec<&T, SplitMix64>> = (0..tours)
            .map(|w| TourSpec {
                topology,
                rng: SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, r.seed, w)),
                start: initiator,
                max_steps,
            })
            .collect();
        tour_frontier_with(&mut specs, &f, mode, reg)
            .into_iter()
            .map(|fate| charge_tour_fate(fate, degree, reg))
            .collect()
    })
}

/// Converts one frontier tour fate into an estimate, charging the same
/// metrics the serial `random_tour_ctx` path charges for that outcome.
fn charge_tour_fate<Rec: Recorder + ?Sized>(
    fate: TourFate,
    initiator_degree: f64,
    reg: &Rec,
) -> Result<Estimate, EstimateError> {
    // A tour stuck at launch sent nothing (fate.hops == 0); the serial
    // path charges no TourHops there, so neither do we.
    if fate.hops > 0 {
        reg.incr(Metric::TourHops, fate.hops);
    }
    match fate.result {
        Ok(tour) => {
            reg.incr(Metric::ToursCompleted, 1);
            reg.observe(HistogramMetric::TourLength, tour.steps as f64);
            Ok(Estimate {
                value: initiator_degree * fate.weight,
                messages: tour.steps,
            })
        }
        Err(e) => {
            match e {
                WalkError::Timeout(_) => reg.incr(Metric::WalkTimeouts, 1),
                WalkError::Stuck(_) | WalkError::Lost(_) => reg.incr(Metric::ToursLost, 1),
            }
            Err(EstimateError::Walk(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JoinRule;
    use census_core::RandomTour;
    use census_graph::generators;

    fn small_net(n: usize, seed: u64) -> DynamicNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::balanced(n, 10, &mut rng);
        DynamicNetwork::new(g, JoinRule::Balanced { max_degree: 10 })
    }

    #[test]
    fn results_arrive_in_replica_order() {
        // Make later replicas finish first: earlier indices sleep longer.
        let out = replicate(4, 0, |r| {
            std::thread::sleep(std::time::Duration::from_millis(30 - 10 * r.index.min(3)));
            r.index
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn seed_stream_is_pure_and_decorrelated() {
        let a: Vec<u64> = replicate(8, 123, |r| r.seed);
        let b: Vec<u64> = replicate(8, 123, |r| r.seed);
        assert_eq!(a, b, "seed stream must be a pure function of the base seed");
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), 8, "replica seeds must differ");
        // Pin the derivation: the domain-tagged Replica stream, not the
        // old untagged `splitmix64(base + i)` (which collided with the
        // service-query stream for equal indices).
        assert_eq!(a[0], stream_seed(StreamDomain::Replica, 123, 0));
        assert_ne!(
            a[0],
            splitmix64(123),
            "tagged stream must diverge from the untagged legacy shape"
        );
    }

    #[test]
    fn static_replications_are_deterministic_and_independent() {
        let net = small_net(150, 1);
        let mut pick = SmallRng::seed_from_u64(2);
        let probe = net.graph().random_node(&mut pick).expect("non-empty");
        let rt = RandomTour::new();
        let first = replicate_static(&net, &rt, probe, 20, 3, 42);
        let second = replicate_static(&net, &rt, probe, 20, 3, 42);
        assert_eq!(first, second, "same base seed must be byte-identical");
        assert_ne!(
            first[0], first[1],
            "distinct replicas must see distinct randomness"
        );
    }

    #[test]
    fn dynamic_replications_are_deterministic() {
        let net = small_net(200, 3);
        let scenario = Scenario::new().remove_gradually(2, 10, 50);
        let rt = RandomTour::new();
        let config = RunConfig::new(15).with_window(5);
        let a = replicate_dynamic(&net, &rt, &config, &scenario, 3, 7);
        let b = replicate_dynamic(&net, &rt, &config, &scenario, 3, 7);
        assert_eq!(a, b);
        // The caller's network is untouched: replicas evolve clones.
        assert_eq!(net.size(), 200);
    }

    #[test]
    fn parallel_matches_serial_execution() {
        let net = small_net(120, 4);
        let mut pick = SmallRng::seed_from_u64(5);
        let probe = net.graph().random_node(&mut pick).expect("non-empty");
        let rt = RandomTour::new();
        let parallel = replicate_static(&net, &rt, probe, 25, 3, 9);
        let serial: Vec<_> = (0..3)
            .map(|i| {
                let mut rng = SmallRng::seed_from_u64(replica_seed(9, i));
                run_static(&net, &rt, probe, 25, &mut rng)
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replicas_panics() {
        let _ = replicate(0, 0, |r| r.index);
    }

    #[test]
    fn batched_tour_replicas_match_serial_estimates_bit_for_bit() {
        use census_metrics::{HistogramMetric, Metric, RunCtx};
        let mut seed_rng = SmallRng::seed_from_u64(20);
        let g = generators::balanced(250, 6, &mut seed_rng);
        let probe = g.nodes().next().expect("non-empty");
        let f = |n: NodeId| ((n.index() % 11) as f64).mul_add(0.5, 1.0);
        let (tours, replicas, base, cap) = (12u64, 3u64, 77u64, 2_000u64);

        let (batched, reg) =
            replicate_tour_frontiers(&g, probe, f, tours, Some(cap), replicas, base);

        // Serial reference: the same per-walk streams driven one at a
        // time through the serial estimator.
        let serial_reg = Registry::new();
        let rt = RandomTour::with_timeout(cap);
        let serial: Vec<Vec<_>> = (0..replicas)
            .map(|r| {
                let rseed = replica_seed(base, r);
                (0..tours)
                    .map(|w| {
                        let mut rng = census_walk::stream::SplitMix64::new(stream_seed(
                            StreamDomain::FrontierWalk,
                            rseed,
                            w,
                        ));
                        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &serial_reg);
                        rt.estimate_sum_with(&mut ctx, probe, f)
                    })
                    .collect()
            })
            .collect();

        assert_eq!(batched, serial, "batched estimates must be bit-identical");
        // The ledger agrees too: same hops, same outcome counts. (The
        // frontier's own shape metrics ride on top, outside the ledger.)
        assert_eq!(reg.message_total(), serial_reg.message_total());
        assert_eq!(
            reg.counter(Metric::ToursCompleted),
            serial_reg.counter(Metric::ToursCompleted)
        );
        assert_eq!(
            reg.counter(Metric::WalkTimeouts),
            serial_reg.counter(Metric::WalkTimeouts)
        );
        assert_eq!(
            reg.histogram_sum(HistogramMetric::TourLength),
            serial_reg.histogram_sum(HistogramMetric::TourLength)
        );
        assert!(reg.counter(Metric::WalkBatchRounds) > 0, "frontier ran");
        let completed: u64 = batched
            .iter()
            .flatten()
            .filter_map(|r| r.as_ref().ok().map(|e| e.messages))
            .sum();
        assert!(
            reg.counter(Metric::TourHops) >= completed,
            "failed tours' hops are charged on top of completed ones"
        );
    }

    #[test]
    fn recorded_replication_merges_deterministically() {
        use crate::runner::run_static_rec;
        use census_metrics::{HistogramMetric, Metric};
        let net = small_net(150, 6);
        let mut pick = SmallRng::seed_from_u64(7);
        let probe = net.graph().random_node(&mut pick).expect("non-empty");
        let rt = RandomTour::new();
        let run_once = || {
            replicate_recorded(4, 11, |r, reg| {
                let mut rng = r.rng();
                run_static_rec(&net, &rt, probe, 15, &mut rng, reg)
            })
        };
        let (records_a, reg_a) = run_once();
        let (records_b, reg_b) = run_once();
        assert_eq!(records_a, records_b, "record series must be reproducible");
        assert_eq!(
            reg_a.snapshot(),
            reg_b.snapshot(),
            "merged registry must be bit-identical across runs, f64 sums included"
        );
        // The merge loses nothing: totals equal the per-record sums.
        let reported: u64 = records_a.iter().flatten().map(|r| r.messages).sum();
        assert_eq!(reg_a.counter(Metric::ReportedMessages), reported);
        assert_eq!(reg_a.message_total(), reported);
        assert_eq!(reg_a.counter(Metric::EstimatesCompleted), 4 * 15);
        assert_eq!(reg_a.histogram_count(HistogramMetric::TourLength), 4 * 15);
    }

    #[test]
    fn recorded_and_plain_replication_agree_on_results() {
        let net = small_net(120, 8);
        let mut pick = SmallRng::seed_from_u64(9);
        let probe = net.graph().random_node(&mut pick).expect("non-empty");
        let rt = RandomTour::new();
        let plain = replicate_static(&net, &rt, probe, 10, 3, 13);
        let (recorded, _reg) = replicate_recorded(3, 13, |r, reg| {
            let mut rng = r.rng();
            crate::runner::run_static_rec(&net, &rt, probe, 10, &mut rng, reg)
        });
        assert_eq!(plain, recorded, "recording must not perturb the replicas");
    }
}

//! Composable fault injection for overlay walks (the §5.3.1 fault model).
//!
//! The paper's simulations "did not allow a departing node to leave the
//! system with the probing message"; §5.3.1 sketches what a deployment
//! faces instead. This module injects exactly those failures into any
//! [`Topology`], one layer per mechanism:
//!
//! - **message loss** — each hop's message is dropped in flight with a
//!   configured probability (the loss §5.3.1's timeout detects);
//! - **crashes** — the node currently holding the probe departs *with*
//!   the message (the failure mode the paper excluded); unrecoverable by
//!   retransmission, only by an initiator retry;
//! - **stale links** — a transient stale neighbour pointer makes the
//!   chosen next hop momentarily unreachable (delivery fails, but a
//!   retransmission after the routing table refreshes can succeed).
//!
//! Each layer draws from its own seeded [`FaultRng`] stream, *after* the
//! walk RNG has chosen the next hop — so faults can truncate a walk but
//! can never perturb its trajectory. Estimates under a [`FaultPlan`] are
//! therefore exactly the fault-free estimates of the walks that survive
//! (the RNG-stream isolation property pinned by the workspace tests).
//!
//! An optional per-hop retransmission budget models the acknowledge/
//! retransmit transport of a real deployment: recoverable faults (loss,
//! stale links) are retried up to `retransmits` times per hop, so a walk
//! dies on a recoverable fault only if `retransmits + 1` consecutive
//! deliveries of the same hop fail. This is what makes supervised
//! estimation *unbiased* under loss — surviving trajectories are
//! identical to the fault-free ones, whereas giving up on the first drop
//! preferentially kills long tours (the survivorship bias law pinned in
//! [`crate::loss`]).

use std::sync::atomic::{AtomicU64, Ordering};

use census_graph::{NodeId, Topology};
use rand::Rng;

use crate::parallel::splitmix64;

/// A `Sync` counter-based fault RNG: a seeded, lock-free stream of
/// uniform `[0, 1)` draws.
///
/// Each call mixes the pre-whitened seed with an atomic draw counter
/// through SplitMix64, so concurrent walkers can share one fault process
/// without interior mutability tricks (`RefCell` would make the wrapper
/// `!Sync` and silently exclude it from
/// [`crate::parallel::replicate`]). The stream is deterministic for a
/// given seed and draw order; under concurrency the *set* of draws is
/// deterministic while their assignment to threads follows scheduling,
/// which is the right contract for an environment process.
#[derive(Debug)]
pub struct FaultRng {
    seed: u64,
    counter: AtomicU64,
}

impl FaultRng {
    /// A fault stream seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            // Pre-whiten so consecutive user seeds give unrelated streams.
            seed: splitmix64(seed),
            counter: AtomicU64::new(0),
        }
    }

    /// The next uniform draw in `[0, 1)`.
    pub fn next_f64(&self) -> f64 {
        let i = self.counter.fetch_add(1, Ordering::Relaxed);
        let z = splitmix64(self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // 53 high bits -> the standard uniform double in [0, 1).
        (z >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Number of draws taken so far.
    #[must_use]
    pub fn draws(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

/// One fault mechanism: a firing probability and its own RNG stream.
#[derive(Debug)]
struct FaultLayer {
    probability: f64,
    rng: FaultRng,
}

impl FaultLayer {
    fn fires(&self) -> bool {
        self.rng.next_f64() < self.probability
    }
}

/// Declarative description of the faults to inject: which mechanisms, at
/// what rates, from which seeds, with how much transport-level recovery.
///
/// The plan is plain configuration (`Copy`); [`FaultPlan::apply`] turns
/// it into a live [`FaultyTopology`] wrapper around an overlay.
///
/// # Examples
///
/// ```
/// use census_graph::{generators, Topology};
/// use census_sim::faults::FaultPlan;
///
/// let g = generators::ring(100);
/// let faulty = FaultPlan::new()
///     .with_message_loss(0.01, 7)
///     .with_crashes(0.0001, 8)
///     .with_retransmits(2)
///     .apply(&g);
/// assert_eq!(faulty.peer_count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    loss: Option<(f64, u64)>,
    crashes: Option<(f64, u64)>,
    stale: Option<(f64, u64)>,
    retransmits: u32,
}

fn assert_probability(p: f64, what: &str) {
    assert!(
        (0.0..=1.0).contains(&p),
        "{what} probability must lie in [0, 1], got {p}"
    );
}

impl FaultPlan {
    /// An empty plan: no faults, no retransmissions.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops each delivery attempt with probability `p`, drawing from a
    /// fault stream seeded by `seed`. Recoverable by retransmission.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` (certain loss is a legitimate
    /// endpoint for testing give-up paths).
    #[must_use]
    pub fn with_message_loss(mut self, p: f64, seed: u64) -> Self {
        assert_probability(p, "message loss");
        self.loss = Some((p, seed));
        self
    }

    /// At each hop, the node holding the probe departs with it with
    /// probability `p` — the paper's excluded failure mode. Fatal to the
    /// walk: no retransmission can recover a message that left with its
    /// holder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_crashes(mut self, p: f64, seed: u64) -> Self {
        assert_probability(p, "crash");
        self.crashes = Some((p, seed));
        self
    }

    /// Each delivery attempt fails with probability `p` because the
    /// sender's neighbour entry is transiently stale. Recoverable by
    /// retransmission (the routing table refreshes between attempts).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_stale_links(mut self, p: f64, seed: u64) -> Self {
        assert_probability(p, "stale link");
        self.stale = Some((p, seed));
        self
    }

    /// Grants every hop up to `n` retransmissions after a *recoverable*
    /// delivery failure (loss or a stale link). A hop then kills the walk
    /// only when all `n + 1` delivery attempts fail. Zero (the default)
    /// reproduces the bare §5.3.1 setting where the first drop loses the
    /// probe.
    #[must_use]
    pub fn with_retransmits(mut self, n: u32) -> Self {
        self.retransmits = n;
        self
    }

    /// The configured per-hop retransmission budget.
    #[must_use]
    pub fn retransmits(&self) -> u32 {
        self.retransmits
    }

    /// Wraps `inner` with this plan's fault layers.
    #[must_use]
    pub fn apply<T: Topology>(self, inner: T) -> FaultyTopology<T> {
        let layer = |cfg: Option<(f64, u64)>| {
            cfg.map(|(probability, seed)| FaultLayer {
                probability,
                rng: FaultRng::new(seed),
            })
        };
        FaultyTopology {
            inner,
            loss: layer(self.loss),
            crashes: layer(self.crashes),
            stale: layer(self.stale),
            retransmits: self.retransmits,
            counters: FaultCounters::default(),
        }
    }
}

/// Lock-free tally of injected faults, kept by a [`FaultyTopology`].
#[derive(Debug, Default)]
pub struct FaultCounters {
    drops: AtomicU64,
    crashes: AtomicU64,
    stale_links: AtomicU64,
    retransmits: AtomicU64,
    walks_killed: AtomicU64,
}

impl FaultCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value snapshot of the tally.
    #[must_use]
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            drops: self.drops.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            stale_links: self.stale_links.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            walks_killed: self.walks_killed.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time values of a [`FaultCounters`] tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultSnapshot {
    /// Delivery attempts dropped by the message-loss layer.
    pub drops: u64,
    /// Walks whose holder departed with the probe (always fatal).
    pub crashes: u64,
    /// Delivery attempts that hit a transiently stale neighbour link.
    pub stale_links: u64,
    /// Extra delivery attempts made by the retransmission transport —
    /// the message overhead of surviving recoverable faults.
    pub retransmits: u64,
    /// Walks killed by this wrapper (crashes plus hops whose entire
    /// retransmission budget failed).
    pub walks_killed: u64,
}

/// A [`Topology`] wrapper injecting the faults of a [`FaultPlan`] into
/// every hop.
///
/// The wrapper intercepts [`Topology::neighbor_of`] — the single point
/// every walk engine forwards through — and stages each hop as:
///
/// 1. **crash check** (fatal): the holder departs with the message;
/// 2. **next-hop choice**: the walk RNG is consumed *exactly once*,
///    before any delivery fault is drawn, so fault streams never perturb
///    walk randomness;
/// 3. **delivery loop**: up to `1 + retransmits` attempts, each of which
///    can fail on message loss or a stale link; the walk dies only when
///    every attempt fails.
///
/// A killed walk surfaces as "no neighbour", which the walk engines
/// report as [`census_walk::WalkError::Stuck`] — the §5.3.1 initiator
/// sees a probe that never returns. All bookkeeping is lock-free
/// ([`FaultRng`] and [`FaultCounters`] are atomic), so the wrapper stays
/// `Sync` and eligible for [`crate::parallel::replicate`].
#[derive(Debug)]
pub struct FaultyTopology<T> {
    inner: T,
    loss: Option<FaultLayer>,
    crashes: Option<FaultLayer>,
    stale: Option<FaultLayer>,
    retransmits: u32,
    counters: FaultCounters,
}

impl<T: Topology> FaultyTopology<T> {
    /// The wrapped topology.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The live fault tally.
    #[must_use]
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Snapshot of the fault tally (shorthand for
    /// `self.counters().snapshot()`).
    #[must_use]
    pub fn fault_snapshot(&self) -> FaultSnapshot {
        self.counters.snapshot()
    }
}

impl<T: Topology> Topology for FaultyTopology<T> {
    fn peer_count(&self) -> usize {
        self.inner.peer_count()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.inner.contains(node)
    }

    fn degree_of(&self, node: NodeId) -> usize {
        self.inner.degree_of(node)
    }

    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.inner.neighbors_of(node)
    }

    // Overrides the trait's slice-indexing default: the walk engines
    // forward through `neighbor_of` precisely so that this fault
    // injection point stays on the path of every hop.
    fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        // Stage 1 — crash: the holder departs with the probe. Fatal, and
        // drawn before the walk RNG so a killed walk's prefix is still
        // identical to the fault-free walk's.
        if let Some(c) = &self.crashes {
            if c.fires() {
                FaultCounters::bump(&self.counters.crashes);
                FaultCounters::bump(&self.counters.walks_killed);
                return None;
            }
        }
        // Stage 2 — the walk RNG chooses the next hop, exactly once per
        // hop, faults or not: trajectories of surviving walks are
        // bit-identical to the fault-free ones.
        let next = self.inner.neighbor_of(node, rng)?;
        // Stage 3 — delivery, with bounded retransmission of
        // recoverable failures.
        for attempt in 0..=self.retransmits {
            if attempt > 0 {
                FaultCounters::bump(&self.counters.retransmits);
            }
            let dropped = self.loss.as_ref().is_some_and(FaultLayer::fires);
            let stale = self.stale.as_ref().is_some_and(FaultLayer::fires);
            if dropped {
                FaultCounters::bump(&self.counters.drops);
            }
            if stale {
                FaultCounters::bump(&self.counters.stale_links);
            }
            if !dropped && !stale {
                return Some(next);
            }
        }
        FaultCounters::bump(&self.counters.walks_killed);
        None
    }

    fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.inner.any_peer(rng)
    }

    // Faults are honest-but-faulty: collision reports pass through to the
    // inner topology (which may itself be adversarial).
    fn reports_collision(&self, node: NodeId, locally_marked: bool) -> bool {
        self.inner.reports_collision(node, locally_marked)
    }
}

// Compile-time check: the fault wrappers must stay `Sync`, or they would
// silently fall out of `parallel::replicate` (the regression this module
// fixes — `LossyTopology` used to carry a `RefCell<SmallRng>`).
fn _assert_sync<T: Sync>() {}
fn _fault_wrappers_are_sync() {
    _assert_sync::<FaultRng>();
    _assert_sync::<FaultyTopology<census_graph::Graph>>();
    _assert_sync::<crate::loss::LossyTopology<census_graph::Graph>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_core::{EstimateError, RandomTour, SizeEstimator};
    use census_graph::generators;
    use census_metrics::RunCtx;
    use census_walk::WalkError;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fault_rng_is_deterministic_uniform_and_sync() {
        let a = FaultRng::new(42);
        let b = FaultRng::new(42);
        let xs: Vec<f64> = (0..1_000).map(|_| a.next_f64()).collect();
        let ys: Vec<f64> = (0..1_000).map(|_| b.next_f64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "uniform mean, got {mean}");
        assert_eq!(a.draws(), 1_000);
        // Different seeds give different streams.
        let c = FaultRng::new(43);
        assert_ne!(xs[0], c.next_f64());
    }

    #[test]
    fn empty_plan_is_transparent() {
        let g = generators::ring(50);
        let faulty = FaultPlan::new().apply(&g);
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let plain = RandomTour::new()
                .estimate_with(&mut RunCtx::new(&g, &mut a), NodeId::new(0))
                .expect("connected");
            let wrapped = RandomTour::new()
                .estimate_with(&mut RunCtx::new(&faulty, &mut b), NodeId::new(0))
                .expect("no faults configured");
            assert_eq!(plain, wrapped);
        }
        assert_eq!(faulty.fault_snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn crashes_kill_walks_and_are_counted() {
        let g = generators::complete(20);
        let faulty = FaultPlan::new().with_crashes(0.2, 5).apply(&g);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut failures = 0u64;
        for _ in 0..100 {
            if matches!(
                RandomTour::new()
                    .estimate_with(&mut RunCtx::new(&faulty, &mut rng), NodeId::new(0)),
                Err(EstimateError::Walk(WalkError::Stuck(_)))
            ) {
                failures += 1;
            }
        }
        assert!(failures > 30, "20% crash rate broke only {failures}/100");
        let snap = faulty.fault_snapshot();
        assert_eq!(snap.crashes, snap.walks_killed);
        assert_eq!(snap.crashes, failures);
        assert_eq!(snap.drops + snap.stale_links + snap.retransmits, 0);
    }

    #[test]
    fn retransmits_recover_recoverable_faults() {
        // Heavy loss + stale links, but a generous retransmission budget:
        // per-attempt failure ~0.4, per-hop kill ~0.4^5 ≈ 1% — most walks
        // on short tours survive, and every survivor equals its
        // fault-free twin.
        let g = generators::complete(15);
        let start = NodeId::new(0);
        let plan = FaultPlan::new()
            .with_message_loss(0.25, 7)
            .with_stale_links(0.2, 8)
            .with_retransmits(4);
        let faulty = plan.apply(&g);
        let bare = FaultPlan::new()
            .with_message_loss(0.25, 7)
            .with_stale_links(0.2, 8)
            .apply(&g);
        let mut survived = 0;
        let mut bare_survived = 0;
        for i in 0..200u64 {
            let seed = splitmix64(900 + i);
            let free = RandomTour::new()
                .estimate_with(
                    &mut RunCtx::new(&g, &mut SmallRng::seed_from_u64(seed)),
                    start,
                )
                .expect("connected");
            if let Ok(est) = RandomTour::new().estimate_with(
                &mut RunCtx::new(&faulty, &mut SmallRng::seed_from_u64(seed)),
                start,
            ) {
                survived += 1;
                assert_eq!(est, free, "survivors must equal their fault-free twin");
            }
            if RandomTour::new()
                .estimate_with(
                    &mut RunCtx::new(&bare, &mut SmallRng::seed_from_u64(seed)),
                    start,
                )
                .is_ok()
            {
                bare_survived += 1;
            }
        }
        assert!(
            survived > 150,
            "retransmission should rescue most walks, got {survived}/200"
        );
        assert!(
            bare_survived < survived,
            "no-retransmit survival {bare_survived} must trail {survived}"
        );
        let snap = faulty.fault_snapshot();
        assert!(snap.retransmits > 0, "recoveries must be accounted");
        assert!(snap.drops > 0 && snap.stale_links > 0);
    }

    #[test]
    fn certain_loss_with_finite_retransmits_kills_every_walk() {
        let g = generators::ring(10);
        let faulty = FaultPlan::new()
            .with_message_loss(1.0, 3)
            .with_retransmits(3)
            .apply(&g);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            assert!(RandomTour::new()
                .estimate_with(&mut RunCtx::new(&faulty, &mut rng), NodeId::new(0))
                .is_err());
        }
        let snap = faulty.fault_snapshot();
        assert_eq!(snap.walks_killed, 10);
        // Every hop burnt its full budget: 4 drops per killed walk.
        assert_eq!(snap.drops, 40);
        assert_eq!(snap.retransmits, 30);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn out_of_range_probability_is_rejected() {
        let _ = FaultPlan::new().with_message_loss(1.5, 0);
    }

    #[test]
    fn plan_accessors_round_trip() {
        let plan = FaultPlan::new().with_retransmits(3);
        assert_eq!(plan.retransmits(), 3);
        let g = generators::ring(5);
        let faulty = plan.apply(&g);
        assert_eq!(faulty.inner().peer_count(), 5);
        assert!(faulty.contains(NodeId::new(0)));
        assert_eq!(faulty.degree_of(NodeId::new(0)), 2);
        assert_eq!(faulty.neighbors_of(NodeId::new(0)).len(), 2);
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(faulty.any_peer(&mut rng).is_some());
    }
}

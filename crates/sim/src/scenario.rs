//! Declarative churn schedules.

/// A churn schedule mapping run indices to membership changes, built from
/// gradual phases and sudden events.
///
/// Reproduces §5.3's three scenarios:
///
/// ```
/// use census_sim::Scenario;
///
/// // Gradual decrease: 100k -> 50k between runs 3000 and 8000 (Fig. 8).
/// let shrink = Scenario::new().remove_gradually(3_000, 8_000, 50_000);
///
/// // Gradual increase: 100k -> 150k between runs 3000 and 8000 (Fig. 9).
/// let grow = Scenario::new().add_gradually(3_000, 8_000, 50_000);
///
/// // Catastrophic (Fig. 10): -25k at run 1000 and 5000, +25k at 7000.
/// let chaos = Scenario::new()
///     .remove_suddenly(1_000, 25_000)
///     .remove_suddenly(5_000, 25_000)
///     .add_suddenly(7_000, 25_000);
///
/// // Totals are exact.
/// let total: i64 = (0..10_000).map(|r| shrink.delta_at(r)).sum();
/// assert_eq!(total, -50_000);
/// # let _ = (grow, chaos);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Scenario {
    phases: Vec<Phase>,
}

#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
enum Phase {
    /// `total` nodes (signed) spread evenly over runs in
    /// `[start, end)`, with integer rounding that makes the sum exact.
    Gradual { start: u64, end: u64, total: i64 },
    /// A one-shot change of `delta` nodes applied before run `run`.
    Sudden { run: u64, delta: i64 },
}

impl Scenario {
    /// The empty (static) scenario.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes `count` nodes spread evenly over runs `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    #[must_use]
    pub fn remove_gradually(mut self, start: u64, end: u64, count: u64) -> Self {
        assert!(start < end, "gradual phase needs a non-empty run range");
        self.phases.push(Phase::Gradual {
            start,
            end,
            total: -i64::try_from(count).expect("count fits in i64"),
        });
        self
    }

    /// Adds `count` nodes spread evenly over runs `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    #[must_use]
    pub fn add_gradually(mut self, start: u64, end: u64, count: u64) -> Self {
        assert!(start < end, "gradual phase needs a non-empty run range");
        self.phases.push(Phase::Gradual {
            start,
            end,
            total: i64::try_from(count).expect("count fits in i64"),
        });
        self
    }

    /// Removes `count` nodes at once, just before run `run`.
    #[must_use]
    pub fn remove_suddenly(mut self, run: u64, count: u64) -> Self {
        self.phases.push(Phase::Sudden {
            run,
            delta: -i64::try_from(count).expect("count fits in i64"),
        });
        self
    }

    /// Adds `count` nodes at once, just before run `run`.
    #[must_use]
    pub fn add_suddenly(mut self, run: u64, count: u64) -> Self {
        self.phases.push(Phase::Sudden {
            run,
            delta: i64::try_from(count).expect("count fits in i64"),
        });
        self
    }

    /// Net membership change to apply just before run `run` (positive:
    /// joins; negative: departures).
    ///
    /// Gradual phases use cumulative integer rounding so that summing
    /// `delta_at` over the phase yields the requested total exactly.
    #[must_use]
    pub fn delta_at(&self, run: u64) -> i64 {
        let mut delta = 0i64;
        for phase in &self.phases {
            match *phase {
                Phase::Sudden { run: r, delta: d } => {
                    if r == run {
                        delta += d;
                    }
                }
                Phase::Gradual { start, end, total } => {
                    if run >= start && run < end {
                        let span = (end - start) as i128;
                        let done = (run - start) as i128;
                        let before = (i128::from(total) * done) / span;
                        let after = (i128::from(total) * (done + 1)) / span;
                        delta += (after - before) as i64;
                    }
                }
            }
        }
        delta
    }

    /// Whether the scenario changes membership at any run in
    /// `[0, horizon)`.
    #[must_use]
    pub fn is_static(&self, horizon: u64) -> bool {
        (0..horizon).all(|r| self.delta_at(r) == 0)
    }

    /// The schedule flattened into an explicit event stream: every run in
    /// `[0, horizon)` with a non-zero net delta, in run order.
    ///
    /// This is the churn feed a long-running consumer (the census
    /// service's churn applier) drains, and it is exactly equivalent to
    /// polling [`Scenario::delta_at`] run by run:
    ///
    /// ```
    /// use census_sim::Scenario;
    ///
    /// let s = Scenario::new().remove_suddenly(3, 10).add_gradually(5, 7, 4);
    /// let events = s.events(10);
    /// assert_eq!(events.len(), 3);
    /// assert_eq!(events[0].run, 3);
    /// assert_eq!(events[0].delta, -10);
    /// assert_eq!(events.iter().map(|e| e.delta).sum::<i64>(), -6);
    /// ```
    #[must_use]
    pub fn events(&self, horizon: u64) -> Vec<MembershipDelta> {
        (0..horizon)
            .filter_map(|run| {
                let delta = self.delta_at(run);
                (delta != 0).then_some(MembershipDelta { run, delta })
            })
            .collect()
    }
}

/// One entry of a [`Scenario`]'s flattened event stream: the net
/// membership change (positive: joins; negative: departures) to apply
/// just before `run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MembershipDelta {
    /// The run index the change precedes.
    pub run: u64,
    /// Signed node-count change; never zero in a [`Scenario::events`]
    /// stream.
    pub delta: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn static_scenario_is_all_zero() {
        let s = Scenario::new();
        assert!(s.is_static(1_000));
    }

    #[test]
    fn sudden_event_fires_once() {
        let s = Scenario::new().remove_suddenly(10, 100);
        assert_eq!(s.delta_at(9), 0);
        assert_eq!(s.delta_at(10), -100);
        assert_eq!(s.delta_at(11), 0);
    }

    #[test]
    fn gradual_total_is_exact_even_with_rounding() {
        // 7 nodes over 3 runs cannot divide evenly.
        let s = Scenario::new().add_gradually(5, 8, 7);
        let per_run: Vec<i64> = (0..10).map(|r| s.delta_at(r)).collect();
        assert_eq!(per_run.iter().sum::<i64>(), 7);
        assert_eq!(per_run[..5], [0, 0, 0, 0, 0]);
        assert!(per_run[5..8].iter().all(|&d| d == 2 || d == 3));
        assert_eq!(per_run[8], 0);
    }

    #[test]
    fn paper_figure_8_schedule() {
        let s = Scenario::new().remove_gradually(3_000, 8_000, 50_000);
        let total: i64 = (0..10_000).map(|r| s.delta_at(r)).sum();
        assert_eq!(total, -50_000);
        assert_eq!(s.delta_at(2_999), 0);
        assert_eq!(s.delta_at(3_000), -10);
        assert_eq!(s.delta_at(8_000), 0);
    }

    #[test]
    fn paper_figure_10_schedule() {
        let s = Scenario::new()
            .remove_suddenly(1_000, 25_000)
            .remove_suddenly(5_000, 25_000)
            .add_suddenly(7_000, 25_000);
        let total: i64 = (0..10_000).map(|r| s.delta_at(r)).sum();
        assert_eq!(total, -25_000);
        assert_eq!(s.delta_at(1_000), -25_000);
        assert_eq!(s.delta_at(7_000), 25_000);
    }

    #[test]
    fn phases_compose_additively() {
        let s = Scenario::new()
            .add_gradually(0, 10, 10)
            .remove_gradually(0, 10, 10);
        assert!(s.is_static(20));
    }

    #[test]
    fn serde_roundtrip_preserves_schedule() {
        let s = Scenario::new()
            .remove_gradually(10, 20, 100)
            .add_suddenly(30, 7);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: Scenario = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(s, back);
        assert_eq!(back.delta_at(30), 7);
    }

    #[test]
    #[should_panic(expected = "non-empty run range")]
    fn inverted_range_panics() {
        let _ = Scenario::new().add_gradually(5, 5, 1);
    }

    #[test]
    fn events_match_delta_at_poll() {
        let s = Scenario::new()
            .remove_gradually(2, 6, 7)
            .add_suddenly(4, 3)
            .remove_suddenly(9, 1);
        let events = s.events(10);
        // Run order, no zero entries, and per-run agreement with delta_at.
        assert!(events.windows(2).all(|w| w[0].run < w[1].run));
        assert!(events.iter().all(|e| e.delta != 0));
        for run in 0..10 {
            let from_events: i64 = events
                .iter()
                .filter(|e| e.run == run)
                .map(|e| e.delta)
                .sum();
            assert_eq!(from_events, s.delta_at(run), "run {run}");
        }
        assert!(Scenario::new().events(100).is_empty());
    }

    proptest! {
        #[test]
        fn gradual_sums_exactly(
            start in 0u64..100,
            len in 1u64..100,
            count in 0u64..10_000,
        ) {
            let s = Scenario::new().remove_gradually(start, start + len, count);
            let total: i64 = (0..start + len + 10).map(|r| s.delta_at(r)).sum();
            prop_assert_eq!(total, -(count as i64));
        }
    }
}

//! The recorder abstraction and its zero-cost default.

use crate::{GaugeMetric, HistogramMetric, Metric};

/// A passive sink for cost metrics.
///
/// Methods take `&self` so a single recorder can be shared by reference
/// across an entire run (and, for [`Registry`](crate::Registry), across
/// threads). The trait is object-safe; generic call sites take
/// `Rec: Recorder + ?Sized` so they accept both concrete recorders and
/// `dyn Recorder` behind a reference.
///
/// Implementations must be *passive*: never draw from an RNG, panic, or
/// otherwise influence the computation being observed. Attaching or
/// detaching a recorder must leave every simulated trajectory — and
/// therefore every figure CSV — bit-identical.
pub trait Recorder {
    /// Add `by` to a counter.
    fn incr(&self, metric: Metric, by: u64);

    /// Record one observation of `value` into a histogram.
    fn observe(&self, metric: HistogramMetric, value: f64);

    /// Set a gauge to its current level (last write wins).
    ///
    /// Default is a no-op so pre-existing recorders (and the no-op one)
    /// stay source-compatible; [`Registry`](crate::Registry) overrides it.
    #[inline]
    fn set_gauge(&self, gauge: GaugeMetric, value: u64) {
        let _ = (gauge, value);
    }

    /// Whether this recorder retains anything. Call sites may skip
    /// preparing expensive observations when this returns `false`; the
    /// no-op recorder's `false` constant lets the branch fold away.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

impl<R: Recorder + ?Sized> Recorder for &R {
    #[inline]
    fn incr(&self, metric: Metric, by: u64) {
        (**self).incr(metric, by);
    }

    #[inline]
    fn observe(&self, metric: HistogramMetric, value: f64) {
        (**self).observe(metric, value);
    }

    #[inline]
    fn set_gauge(&self, gauge: GaugeMetric, value: u64) {
        (**self).set_gauge(gauge, value);
    }

    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// The zero-cost default recorder: discards everything.
///
/// Because every recording call site is generic over `Rec: Recorder`,
/// monomorphisation inlines these empty bodies and the optimizer deletes
/// the calls — a run over `NoopRecorder` compiles to the same hot loop as
/// the pre-observability code.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

/// A shared no-op recorder for contexts built without one.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn incr(&self, _metric: Metric, _by: u64) {}

    #[inline(always)]
    fn observe(&self, _metric: HistogramMetric, _value: f64) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        assert!(!NOOP.enabled());
        NOOP.incr(Metric::TourHops, 10);
        NOOP.observe(HistogramMetric::TourLength, 10.0);
        NOOP.set_gauge(GaugeMetric::QueueDepth, 10);
    }

    #[test]
    fn references_forward() {
        fn takes_dyn(r: &dyn Recorder) -> bool {
            r.incr(Metric::TourHops, 1);
            r.enabled()
        }
        assert!(!takes_dyn(&NOOP));
        assert!(!(&&NOOP).enabled());
    }
}

//! The run context threaded through every estimator entry point.

use crate::{HistogramMetric, Metric, NoopRecorder, Recorder, NOOP};

/// Everything one protocol run needs: the topology it walks, the RNG
/// driving its choices, and the recorder observing its cost.
///
/// `RunCtx` replaces the four divergent `(&topology, initiator,
/// &mut rng)` entry-point signatures with a single bundle, and owns the
/// *message tally*: every overlay message is charged exactly once through
/// [`RunCtx::on_message`], which bumps both a plain local counter (the
/// source of `Estimate.messages`, via [`RunCtx::messages_since`]) and the
/// attached recorder. Deriving both numbers from the same call site is
/// what makes `--metrics-json` totals reconcile exactly with the reported
/// per-estimate costs.
///
/// The struct itself places no bounds on its parameters (this crate knows
/// nothing about graphs or RNGs); walk and estimator functions bound `T`
/// and `R` as they need. `Rec` defaults to [`NoopRecorder`], whose empty
/// inlined methods compile away.
#[derive(Debug)]
pub struct RunCtx<'a, T: ?Sized, R, Rec: ?Sized = NoopRecorder> {
    /// The overlay being walked.
    pub topology: &'a T,
    /// The RNG driving every random choice of the run.
    pub rng: &'a mut R,
    /// The metrics sink. Shared (`&Rec`): recorders take `&self`.
    pub recorder: &'a Rec,
    messages: u64,
}

impl<'a, T: ?Sized, R> RunCtx<'a, T, R, NoopRecorder> {
    /// A context with no recorder attached — the zero-overhead default.
    pub fn new(topology: &'a T, rng: &'a mut R) -> Self {
        RunCtx {
            topology,
            rng,
            recorder: &NOOP,
            messages: 0,
        }
    }
}

impl<'a, T: ?Sized, R, Rec: Recorder + ?Sized> RunCtx<'a, T, R, Rec> {
    /// A context that reports into `recorder`.
    pub fn with_recorder(topology: &'a T, rng: &'a mut R, recorder: &'a Rec) -> Self {
        RunCtx {
            topology,
            rng,
            recorder,
            messages: 0,
        }
    }

    /// Charge `n` overlay messages to `metric`.
    ///
    /// This is the single accounting site: it advances the local message
    /// tally *and* the recorder together, so the recorder's message-class
    /// totals always equal the sum of reported `Estimate.messages`.
    #[inline]
    pub fn on_message(&mut self, metric: Metric, n: u64) {
        debug_assert!(
            metric.is_message_cost(),
            "{} is not message-class",
            metric.name()
        );
        self.messages += n;
        self.recorder.incr(metric, n);
    }

    /// Record `n` occurrences of a non-message event.
    #[inline]
    pub fn on_event(&self, metric: Metric, n: u64) {
        debug_assert!(
            !metric.is_message_cost(),
            "{} is message-class; use on_message",
            metric.name()
        );
        self.recorder.incr(metric, n);
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, metric: HistogramMetric, value: f64) {
        self.recorder.observe(metric, value);
    }

    /// Opaque marker of the current message tally; pair with
    /// [`RunCtx::messages_since`] to cost a sub-computation.
    #[inline]
    #[must_use]
    pub fn message_mark(&self) -> u64 {
        self.messages
    }

    /// Messages charged since `mark` was taken.
    #[inline]
    #[must_use]
    pub fn messages_since(&self, mark: u64) -> u64 {
        self.messages - mark
    }

    /// Total messages charged through this context so far.
    #[inline]
    #[must_use]
    pub fn messages_total(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn tally_and_recorder_advance_together() {
        let topo = ();
        let mut rng = ();
        let reg = Registry::new();
        let mut ctx = RunCtx::with_recorder(&topo, &mut rng, &reg);
        let mark = ctx.message_mark();
        ctx.on_message(Metric::TourHops, 3);
        ctx.on_message(Metric::CtrwHops, 4);
        ctx.on_event(Metric::SamplesDrawn, 1);
        assert_eq!(ctx.messages_since(mark), 7);
        assert_eq!(ctx.messages_total(), 7);
        assert_eq!(reg.message_total(), 7);
        assert_eq!(reg.counter(Metric::SamplesDrawn), 1);
    }

    #[test]
    fn noop_context_still_tallies_messages() {
        let topo = ();
        let mut rng = ();
        let mut ctx = RunCtx::new(&topo, &mut rng);
        ctx.on_message(Metric::SampleHops, 9);
        assert_eq!(ctx.messages_total(), 9);
        assert!(!ctx.recorder.enabled());
    }
}

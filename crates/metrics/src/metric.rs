//! The closed vocabulary of recorded quantities.
//!
//! A fixed enum (rather than string keys) keeps the hot path allocation-
//! free — recording is an array index plus one atomic add — and makes the
//! merge in `parallel::replicate` trivially deterministic.

/// A monotone counter recorded via [`Recorder::incr`](crate::Recorder::incr).
///
/// Counters split into two classes. *Message-class* metrics each count
/// overlay messages under the paper's cost model (one message per walk
/// hop or protocol exchange); their sum is
/// [`Registry::message_total`](crate::Registry::message_total) and must
/// reconcile with the `Estimate.messages` values reported by estimators.
/// *Event-class* metrics count everything else (tours, samples, retries,
/// …) and never enter the message total. Every overlay message increments
/// exactly one message-class metric, so the classes partition the cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Hops taken by Random Tour walks (message-class).
    TourHops,
    /// Hops taken by continuous-time random walks (message-class).
    CtrwHops,
    /// Hops taken by samplers without a dedicated hop metric — DTRW,
    /// oracle, custom samplers (message-class).
    SampleHops,
    /// Accepted Metropolis-Hastings moves; rejected proposals send no
    /// message (message-class).
    MetropolisHops,
    /// Flood messages sent by the polling estimators (message-class).
    PollFloodMessages,
    /// Reply messages returned to a polling initiator (message-class).
    PollReplyMessages,
    /// Messages exchanged by gossip averaging, two per contact
    /// (message-class).
    GossipMessages,
    /// Random Tours that returned to their initiator. Together with
    /// [`Metric::ToursLost`] and [`Metric::WalkTimeouts`] this forms a
    /// disjoint partition of tour attempts: every attempt increments
    /// exactly one of the three.
    ToursCompleted,
    /// Random Tours stranded on a dead or isolated peer mid-walk
    /// (the departing-node-takes-the-message failure). Disjoint from
    /// [`Metric::WalkTimeouts`].
    ToursLost,
    /// Walks aborted by an explicit step budget (the §5.3.1
    /// initiator-side timeout). Disjoint from [`Metric::ToursLost`].
    WalkTimeouts,
    /// Exponential sojourn times drawn by CTRW walks.
    SojournDraws,
    /// Samples produced by any [`Sampler`](https://docs.rs/census-sampling).
    SamplesDrawn,
    /// Metropolis-Hastings proposals rejected by the acceptance filter.
    MetropolisRejections,
    /// Sample & Collide collisions observed.
    Collisions,
    /// Adaptive Sample & Collide rounds executed.
    ScRounds,
    /// Estimates successfully completed by an experiment runner.
    EstimatesCompleted,
    /// CSR snapshots re-taken by `run_dynamic` after churn.
    Refreezes,
    /// Estimate attempts retried after a walk-level failure under churn.
    WalkRetries,
    /// Sum of `Estimate.messages` values consumed by runners/harnesses;
    /// equals [`message_total`](crate::Registry::message_total) in
    /// loss-free runs (the reconciliation invariant).
    ReportedMessages,
    /// Queries offered to a census service, accepted or not. Ledger root:
    /// `QueriesSubmitted = accepted + QueriesRejected` and
    /// `accepted = QueriesCompleted + QueriesExpired` — every submission
    /// is accounted for exactly once.
    QueriesSubmitted,
    /// Accepted service queries that produced an answer.
    QueriesCompleted,
    /// Queries refused at submission because the queue was full
    /// (explicit backpressure; never a silent drop).
    QueriesRejected,
    /// Accepted service queries that exhausted their deadline or failed
    /// terminally (timeout, stuck, churn-broken, degenerate) without an
    /// answer.
    QueriesExpired,
    /// Lock-step rounds executed by batched walk frontiers. One round
    /// advances every live walk in the frontier by one visit-step, so
    /// rounds × mean occupancy ≈ total visit-steps executed batched.
    WalkBatchRounds,
    /// Walk hops that crossed a shard boundary of a partitioned snapshot
    /// (one per cut-edge traversal). Execution-shape, not overlay cost:
    /// the hop itself is already charged to its walk's message-class
    /// metric; this counts how often the sharded engine had to resolve a
    /// connector instead of a local CSR row.
    CutCrossings,
    /// Handoff records enqueued between shard worker pools of a sharded
    /// census service — fresh queries dispatched to their initiator's
    /// home shard plus in-flight walk segments resumed on their cut
    /// edge's destination shard. Execution-shape, like
    /// [`Metric::WalkBatchRounds`]: the unsharded path records zero.
    ShardHandoffs,
    /// Walk steps that touched a Byzantine (adversarial) node — an
    /// `AttackPlan` wrapper's encounter tally, absorbed after each run.
    /// Simulation-side ground truth: a deployed initiator cannot observe
    /// it, which is exactly why the bias experiments need it.
    ByzantineEncounters,
    /// Walks dropped by a Byzantine node's `WalkSwallow` behaviour (the
    /// probe message is eaten; the initiator sees a stuck/lost walk).
    SwallowedWalks,
    /// Sample & Collide collision reports forged by Byzantine nodes —
    /// claims of a repeat visit that never happened, inflating `C_l` and
    /// deflating the size estimate.
    ForgedCollisions,
    /// Edges rewired by a self-adapting overlay protocol (`census-overlay`):
    /// one unit per edge replaced by an adaptation or gradient-swap step.
    /// Event-class: the protocol's walk traffic is simulated topology
    /// construction, not estimator overlay cost.
    RewireOps,
    /// Synchronous rounds executed by an overlay engine — one unit per
    /// node activated per tick. Event-class, like
    /// [`Metric::WalkBatchRounds`]: execution shape, not message cost.
    OverlayTicks,
}

impl Metric {
    /// Every counter, in declaration (and serialisation) order.
    pub const ALL: [Metric; 31] = [
        Metric::TourHops,
        Metric::CtrwHops,
        Metric::SampleHops,
        Metric::MetropolisHops,
        Metric::PollFloodMessages,
        Metric::PollReplyMessages,
        Metric::GossipMessages,
        Metric::ToursCompleted,
        Metric::ToursLost,
        Metric::WalkTimeouts,
        Metric::SojournDraws,
        Metric::SamplesDrawn,
        Metric::MetropolisRejections,
        Metric::Collisions,
        Metric::ScRounds,
        Metric::EstimatesCompleted,
        Metric::Refreezes,
        Metric::WalkRetries,
        Metric::ReportedMessages,
        Metric::QueriesSubmitted,
        Metric::QueriesCompleted,
        Metric::QueriesRejected,
        Metric::QueriesExpired,
        Metric::WalkBatchRounds,
        Metric::CutCrossings,
        Metric::ShardHandoffs,
        Metric::ByzantineEncounters,
        Metric::SwallowedWalks,
        Metric::ForgedCollisions,
        Metric::RewireOps,
        Metric::OverlayTicks,
    ];

    /// Number of counters a registry allocates.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in snapshots and `metrics.json`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Metric::TourHops => "tour_hops",
            Metric::CtrwHops => "ctrw_hops",
            Metric::SampleHops => "sample_hops",
            Metric::MetropolisHops => "metropolis_hops",
            Metric::PollFloodMessages => "poll_flood_messages",
            Metric::PollReplyMessages => "poll_reply_messages",
            Metric::GossipMessages => "gossip_messages",
            Metric::ToursCompleted => "tours_completed",
            Metric::ToursLost => "tours_lost",
            Metric::WalkTimeouts => "walk_timeouts",
            Metric::SojournDraws => "sojourn_draws",
            Metric::SamplesDrawn => "samples_drawn",
            Metric::MetropolisRejections => "metropolis_rejections",
            Metric::Collisions => "collisions",
            Metric::ScRounds => "sc_rounds",
            Metric::EstimatesCompleted => "estimates_completed",
            Metric::Refreezes => "refreezes",
            Metric::WalkRetries => "walk_retries",
            Metric::ReportedMessages => "reported_messages",
            Metric::QueriesSubmitted => "queries_submitted",
            Metric::QueriesCompleted => "queries_completed",
            Metric::QueriesRejected => "queries_rejected",
            Metric::QueriesExpired => "queries_expired",
            Metric::WalkBatchRounds => "walk_batch_rounds",
            Metric::CutCrossings => "cut_crossings",
            Metric::ShardHandoffs => "shard_handoffs",
            Metric::ByzantineEncounters => "byzantine_encounters",
            Metric::SwallowedWalks => "swallowed_walks",
            Metric::ForgedCollisions => "forged_collisions",
            Metric::RewireOps => "rewire_ops",
            Metric::OverlayTicks => "overlay_ticks",
        }
    }

    /// Whether this counter denominates overlay message cost (one unit =
    /// one message under the paper's Figure 5 / Table 1 accounting).
    #[must_use]
    pub const fn is_message_cost(self) -> bool {
        matches!(
            self,
            Metric::TourHops
                | Metric::CtrwHops
                | Metric::SampleHops
                | Metric::MetropolisHops
                | Metric::PollFloodMessages
                | Metric::PollReplyMessages
                | Metric::GossipMessages
        )
    }
}

/// A distribution recorded via [`Recorder::observe`](crate::Recorder::observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum HistogramMetric {
    /// Hop count of one completed Random Tour.
    TourLength,
    /// Message cost of one sample (hops charged to the sampler).
    SampleCost,
    /// Virtual-time budget of one CTRW walk (the timer `T`); under
    /// adaptive Sample & Collide this traces the timer-doubling schedule.
    CtrwVirtualTime,
    /// Wall-clock latency, in microseconds, from a census-service query
    /// leaving the queue to its outcome being recorded.
    QueryLatency,
    /// Live walks in a batched frontier at the start of each lock-step
    /// round — the frontier's drain profile (starts at W, decays as
    /// walks terminate and are compacted out).
    BatchOccupancy,
    /// Hops one walk advanced inside a single shard before terminating
    /// or hitting a cut edge — the shard-local segment length of the
    /// walk-stitching engine. Short segments mean handoff-dominated
    /// execution; long segments mean the partition has good edge
    /// locality.
    SegmentLength,
}

impl HistogramMetric {
    /// Every histogram, in declaration (and serialisation) order.
    pub const ALL: [HistogramMetric; 6] = [
        HistogramMetric::TourLength,
        HistogramMetric::SampleCost,
        HistogramMetric::CtrwVirtualTime,
        HistogramMetric::QueryLatency,
        HistogramMetric::BatchOccupancy,
        HistogramMetric::SegmentLength,
    ];

    /// Number of histograms a registry allocates.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in snapshots and `metrics.json`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            HistogramMetric::TourLength => "tour_length",
            HistogramMetric::SampleCost => "sample_cost",
            HistogramMetric::CtrwVirtualTime => "ctrw_virtual_time",
            HistogramMetric::QueryLatency => "query_latency_us",
            HistogramMetric::BatchOccupancy => "batch_occupancy",
            HistogramMetric::SegmentLength => "segment_length",
        }
    }
}

/// A last-write-wins level recorded via
/// [`Recorder::set_gauge`](crate::Recorder::set_gauge).
///
/// Unlike counters, gauges describe an instantaneous state (a queue depth,
/// a staleness lag); merging registries keeps the *maximum* observed
/// level, making [`Registry::absorb`](crate::Registry::absorb) order-
/// deterministic — a merged gauge reads "worst level any replica saw".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum GaugeMetric {
    /// Queries sitting in a census-service queue right now.
    QueueDepth,
    /// How many freezes behind the newest snapshot the epoch pinned by
    /// the most recent query was (0 = perfectly fresh).
    ///
    /// **Merge rule under sharding.** A sharded service keeps one epoch
    /// chain *per shard* and pins a whole epoch vector per query; the
    /// value it reports here is the **maximum** lag across the pinned
    /// vector's shard chains — the staleness of the worst shard the
    /// query could have walked, never an average. Combined with the
    /// gauge's max-on-absorb merge (below), a merged registry therefore
    /// reads "worst shard lag any worker of any replica saw".
    EpochLag,
    /// Epoch stamp of the newest snapshot published by a service or
    /// dynamic runner.
    SnapshotEpoch,
    /// λ₂ checkpoints recorded so far by an overlay scenario runner —
    /// the length of the spectral-gap trajectory captured while the
    /// overlay was still wiring itself.
    Lambda2Checkpoints,
}

impl GaugeMetric {
    /// Every gauge, in declaration (and serialisation) order.
    pub const ALL: [GaugeMetric; 4] = [
        GaugeMetric::QueueDepth,
        GaugeMetric::EpochLag,
        GaugeMetric::SnapshotEpoch,
        GaugeMetric::Lambda2Checkpoints,
    ];

    /// Number of gauges a registry allocates.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in snapshots and `metrics.json`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            GaugeMetric::QueueDepth => "queue_depth",
            GaugeMetric::EpochLag => "epoch_lag",
            GaugeMetric::SnapshotEpoch => "snapshot_epoch",
            GaugeMetric::Lambda2Checkpoints => "lambda2_checkpoints",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_order_matches_discriminants() {
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "{} out of order", m.name());
        }
        for (i, h) in HistogramMetric::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "{} out of order", h.name());
        }
        for (i, g) in GaugeMetric::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "{} out of order", g.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT);
    }

    #[test]
    fn message_classes_partition_sanely() {
        assert!(Metric::TourHops.is_message_cost());
        assert!(Metric::GossipMessages.is_message_cost());
        assert!(!Metric::ReportedMessages.is_message_cost());
        assert!(!Metric::SamplesDrawn.is_message_cost());
        // The service-ledger counters are bookkeeping, not overlay traffic.
        assert!(!Metric::QueriesSubmitted.is_message_cost());
        assert!(!Metric::QueriesExpired.is_message_cost());
        let n_msg = Metric::ALL.iter().filter(|m| m.is_message_cost()).count();
        assert_eq!(n_msg, 7);
    }
}

//! Cost observability for the overlay-census workspace.
//!
//! The paper's entire evaluation is denominated in *overlay message cost*
//! (Figure 5, Table 1: one message per walk hop or protocol exchange).
//! This crate provides the measurement substrate: a tiny object-safe
//! [`Recorder`] trait, a lock-free [`Registry`] implementation built on
//! atomic counters and fixed power-of-two-bucket histograms, and a
//! [`RunCtx`] bundle (topology + RNG + recorder) threaded through every
//! walk, sampler, and estimator entry point.
//!
//! Recording is strictly *passive*: no recorder implementation may draw
//! from the RNG or otherwise perturb the execution it observes, so a run
//! produces bit-identical results with or without a live registry
//! attached. The default [`NoopRecorder`] rides the same monomorphisation
//! pattern as the `R: Rng` generics — its empty inlined methods compile
//! away entirely, keeping the no-recorder hot path unchanged.
//!
//! This crate deliberately depends on nothing but `serde` (for
//! [`Snapshot`]): the graph/walk layers depend on it, not vice versa.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod metric;
mod recorder;
mod registry;

pub use ctx::RunCtx;
pub use metric::{GaugeMetric, HistogramMetric, Metric};
pub use recorder::{NoopRecorder, Recorder, NOOP};
pub use registry::{bucket_bounds, HistogramSnapshot, Registry, Snapshot, HISTOGRAM_BUCKETS};

//! The lock-free recording backend.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{GaugeMetric, HistogramMetric, Metric, Recorder};

/// Number of buckets in every histogram.
///
/// Bucket `0` holds values in `[0, 1)`; bucket `b ≥ 1` holds values in
/// `[2^(b−1), 2^b)`; the last bucket additionally absorbs everything
/// larger. Powers of two cover the full dynamic range of hop counts at
/// paper scale (tour lengths ~N = 100,000 fit in bucket 17) with a fixed
/// footprint and no configuration.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Map a non-negative value to its power-of-two bucket.
fn bucket_of(value: f64) -> usize {
    if value.is_nan() || value < 1.0 {
        // Negative and NaN observations also land in bucket 0 rather
        // than poisoning the registry; recording must never panic.
        return 0;
    }
    let truncated = if value >= u64::MAX as f64 {
        u64::MAX
    } else {
        value as u64
    };
    // floor(log2(v)) + 1 == bit length of the truncated value.
    let bits = (u64::BITS - truncated.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// The value range a bucket covers: bucket `0` is `[0, 1)`, bucket `b ≥
/// 1` is `[2^(b−1), 2^b)`. The last bucket is open-ended at the top; its
/// nominal upper bound is still returned so quantile interpolation has a
/// finite range to work with.
///
/// # Panics
///
/// Panics if `bucket >= HISTOGRAM_BUCKETS`.
#[must_use]
pub fn bucket_bounds(bucket: usize) -> (f64, f64) {
    assert!(bucket < HISTOGRAM_BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        (0.0, 1.0)
    } else {
        ((1u64 << (bucket - 1)) as f64, (1u64 << bucket) as f64)
    }
}

/// Quantile estimate over raw bucket counts: find the bucket holding the
/// rank `q·count`, then interpolate linearly inside it. Shared by
/// [`Registry::histogram_quantile`] and [`HistogramSnapshot::quantile`].
fn quantile_from_buckets(buckets: &[u64], count: u64, q: f64) -> Option<f64> {
    if count == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let rank = q * count as f64;
    let mut below = 0u64;
    for (b, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let cum = below + c;
        if cum as f64 >= rank {
            let (lower, upper) = bucket_bounds(b);
            let within = ((rank - below as f64) / c as f64).clamp(0.0, 1.0);
            return Some(lower + (upper - lower) * within);
        }
        below = cum;
    }
    // Rounding pushed the rank past the final cumulative count: the
    // answer is the upper edge of the last non-empty bucket.
    buckets
        .iter()
        .rposition(|&c| c != 0)
        .map(|b| bucket_bounds(b).1)
}

/// One fixed-bucket histogram: per-bucket counts plus an exact count and
/// floating-point sum for mean reconstruction.
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// `f64` bit pattern, updated by compare-and-swap.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&self.sum_bits, value);
    }
}

/// Lock-free add of `value` to an `AtomicU64` holding `f64` bits.
///
/// Concurrent adds commute only up to floating-point rounding; the
/// deterministic-merge guarantee therefore comes from giving each replica
/// its *own* registry and [`absorb`](Registry::absorb)-ing them serially
/// in spawn order, not from this primitive.
fn add_f64(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + value).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// The concrete lock-free [`Recorder`]: one atomic counter per [`Metric`]
/// and one fixed-bucket histogram per [`HistogramMetric`].
///
/// All operations are wait-free atomic adds (the histogram sum uses a CAS
/// loop), so a single registry can be shared by reference across threads;
/// the parallel replication engine instead gives each replica a private
/// registry and merges them in spawn order so the merged totals — f64
/// sums included — are bit-deterministic for a fixed seed.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; Metric::COUNT],
    histograms: [Histogram; HistogramMetric::COUNT],
    gauges: [AtomicU64; GaugeMetric::COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with every counter and histogram at zero.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| Histogram::new()),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Current value of one counter.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Observation count of one histogram.
    #[must_use]
    pub fn histogram_count(&self, metric: HistogramMetric) -> u64 {
        self.histograms[metric as usize]
            .count
            .load(Ordering::Relaxed)
    }

    /// Sum of all observations of one histogram.
    #[must_use]
    pub fn histogram_sum(&self, metric: HistogramMetric) -> f64 {
        f64::from_bits(
            self.histograms[metric as usize]
                .sum_bits
                .load(Ordering::Relaxed),
        )
    }

    /// Current level of one gauge.
    #[must_use]
    pub fn gauge(&self, gauge: GaugeMetric) -> u64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Quantile estimate (`q` in `[0, 1]`) of one histogram, linearly
    /// interpolated within its power-of-two bucket.
    ///
    /// Bucket geometry bounds the error: the true value and the estimate
    /// share a bucket, so the estimate is within a factor of two of the
    /// true quantile — coarse, but faithful in ordering, and exactly
    /// what the fixed-footprint registry can answer without keeping raw
    /// samples. Returns `None` for an empty histogram or a `q` outside
    /// `[0, 1]`.
    #[must_use]
    pub fn histogram_quantile(&self, metric: HistogramMetric, q: f64) -> Option<f64> {
        let hist = &self.histograms[metric as usize];
        let buckets: Vec<u64> = hist
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_from_buckets(&buckets, hist.count.load(Ordering::Relaxed), q)
    }

    /// Total overlay messages recorded: the sum of every message-class
    /// counter (see [`Metric::is_message_cost`]). In a loss-free run this
    /// equals both the [`Metric::ReportedMessages`] counter and the sum
    /// of `Estimate.messages` over the run — the reconciliation invariant
    /// the test-suite pins.
    #[must_use]
    pub fn message_total(&self) -> u64 {
        Metric::ALL
            .iter()
            .filter(|m| m.is_message_cost())
            .map(|&m| self.counter(m))
            .sum()
    }

    /// Fold another registry into this one, counter by counter and bucket
    /// by bucket.
    ///
    /// Absorbing a sequence of registries in a fixed order is
    /// deterministic including the floating-point histogram sums, which
    /// is how `parallel::replicate` merges per-replica registries.
    pub fn absorb(&self, other: &Registry) {
        for m in Metric::ALL {
            let v = other.counter(m);
            if v != 0 {
                self.counters[m as usize].fetch_add(v, Ordering::Relaxed);
            }
        }
        for h in HistogramMetric::ALL {
            let theirs = &other.histograms[h as usize];
            let ours = &self.histograms[h as usize];
            for (o, t) in ours.buckets.iter().zip(theirs.buckets.iter()) {
                let v = t.load(Ordering::Relaxed);
                if v != 0 {
                    o.fetch_add(v, Ordering::Relaxed);
                }
            }
            ours.count
                .fetch_add(theirs.count.load(Ordering::Relaxed), Ordering::Relaxed);
            add_f64(
                &ours.sum_bits,
                f64::from_bits(theirs.sum_bits.load(Ordering::Relaxed)),
            );
        }
        // Gauges are levels, not totals: keep the worst level either side
        // saw. `max` is commutative and associative, so the merge stays
        // order-deterministic.
        for g in GaugeMetric::ALL {
            let theirs = other.gauge(g);
            self.gauges[g as usize].fetch_max(theirs, Ordering::Relaxed);
        }
    }

    /// An owned, serialisable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = Metric::ALL
            .iter()
            .map(|&m| (m.name().to_owned(), self.counter(m)))
            .collect();
        let histograms = HistogramMetric::ALL
            .iter()
            .map(|&h| {
                let hist = &self.histograms[h as usize];
                let snap = HistogramSnapshot {
                    count: hist.count.load(Ordering::Relaxed),
                    sum: f64::from_bits(hist.sum_bits.load(Ordering::Relaxed)),
                    buckets: hist
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                };
                (h.name().to_owned(), snap)
            })
            .collect();
        let gauges = GaugeMetric::ALL
            .iter()
            .map(|&g| (g.name().to_owned(), self.gauge(g)))
            .collect();
        Snapshot {
            message_total: self.message_total(),
            counters,
            histograms,
            gauges,
        }
    }
}

impl Recorder for Registry {
    #[inline]
    fn incr(&self, metric: Metric, by: u64) {
        self.counters[metric as usize].fetch_add(by, Ordering::Relaxed);
    }

    #[inline]
    fn observe(&self, metric: HistogramMetric, value: f64) {
        self.histograms[metric as usize].observe(value);
    }

    #[inline]
    fn set_gauge(&self, gauge: GaugeMetric, value: u64) {
        self.gauges[gauge as usize].store(value, Ordering::Relaxed);
    }
}

/// Owned, serialisable state of a [`Registry`] — what `figures
/// --metrics-json` writes next to the figure CSVs.
///
/// Keys are the stable snake_case metric names; `BTreeMap` keeps the JSON
/// output deterministically ordered.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Sum of all message-class counters (the paper's cost axis).
    pub message_total: u64,
    /// Every counter by name, including zeros.
    pub counters: BTreeMap<String, u64>,
    /// Every histogram by name, including empty ones.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Every gauge by name, including zeros. Defaults to empty when
    /// deserialising snapshots written before gauges existed.
    #[serde(default)]
    pub gauges: BTreeMap<String, u64>,
}

/// Serialisable state of one histogram.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (`sum / count` reconstructs the mean).
    pub sum: f64,
    /// Per-bucket counts; bucket `b` covers `[2^(b−1), 2^b)` with bucket
    /// 0 covering `[0, 1)` and the last bucket open-ended.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Quantile estimate over the snapshotted buckets; see
    /// [`Registry::histogram_quantile`] for semantics and error bounds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.buckets, self.count, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.99), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(1.5), 1);
        assert_eq!(bucket_of(2.0), 2);
        assert_eq!(bucket_of(3.99), 2);
        assert_eq!(bucket_of(4.0), 3);
        assert_eq!(bucket_of(100_000.0), 17);
        assert_eq!(bucket_of(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
    }

    #[test]
    fn bucket_bounds_tile_the_positive_axis() {
        assert_eq!(bucket_bounds(0), (0.0, 1.0));
        assert_eq!(bucket_bounds(1), (1.0, 2.0));
        assert_eq!(bucket_bounds(10), (512.0, 1024.0));
        for b in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_bounds(b).0, bucket_bounds(b - 1).1, "gap at {b}");
        }
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        let reg = Registry::new();
        assert_eq!(
            reg.histogram_quantile(HistogramMetric::QueryLatency, 0.5),
            None
        );
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["query_latency_us"].quantile(0.99), None);
    }

    #[test]
    fn quantiles_reject_out_of_range_q() {
        let reg = Registry::new();
        reg.observe(HistogramMetric::QueryLatency, 100.0);
        assert_eq!(
            reg.histogram_quantile(HistogramMetric::QueryLatency, -0.1),
            None
        );
        assert_eq!(
            reg.histogram_quantile(HistogramMetric::QueryLatency, 1.5),
            None
        );
        assert_eq!(
            reg.histogram_quantile(HistogramMetric::QueryLatency, f64::NAN),
            None
        );
    }

    #[test]
    fn quantiles_land_in_the_observed_bucket() {
        // Every observation is 100 μs: all mass sits in [64, 128), so
        // every quantile estimate must too.
        let reg = Registry::new();
        for _ in 0..1000 {
            reg.observe(HistogramMetric::QueryLatency, 100.0);
        }
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let v = reg
                .histogram_quantile(HistogramMetric::QueryLatency, q)
                .expect("non-empty");
            assert!((64.0..=128.0).contains(&v), "q={q} gave {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_split_bimodal_mass() {
        // 900 fast observations at ~10 μs, 100 slow at ~10 ms: p50 must
        // sit in the fast mode, p99/p999 in the slow mode, and the
        // estimates must be monotone in q.
        let reg = Registry::new();
        for _ in 0..900 {
            reg.observe(HistogramMetric::QueryLatency, 10.0);
        }
        for _ in 0..100 {
            reg.observe(HistogramMetric::QueryLatency, 10_000.0);
        }
        let q = |p: f64| {
            reg.histogram_quantile(HistogramMetric::QueryLatency, p)
                .expect("non-empty")
        };
        let (p50, p99, p999) = (q(0.50), q(0.99), q(0.999));
        assert!((8.0..=16.0).contains(&p50), "p50={p50}");
        assert!((8192.0..=16384.0).contains(&p99), "p99={p99}");
        assert!((8192.0..=16384.0).contains(&p999), "p999={p999}");
        assert!(p50 <= p99 && p99 <= p999, "quantiles must be monotone");
        // The snapshot path answers identically.
        let snap = reg.snapshot();
        let h = &snap.histograms["query_latency_us"];
        assert_eq!(h.quantile(0.99), Some(p99));
    }

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.incr(Metric::TourHops, 5);
        reg.incr(Metric::TourHops, 7);
        reg.incr(Metric::SamplesDrawn, 1);
        assert_eq!(reg.counter(Metric::TourHops), 12);
        assert_eq!(reg.counter(Metric::SamplesDrawn), 1);
        // Only the message-class counter enters the total.
        assert_eq!(reg.message_total(), 12);
    }

    #[test]
    fn histograms_track_count_sum_and_buckets() {
        let reg = Registry::new();
        for v in [0.5, 1.0, 3.0, 3.0, 1000.0] {
            reg.observe(HistogramMetric::TourLength, v);
        }
        assert_eq!(reg.histogram_count(HistogramMetric::TourLength), 5);
        assert!((reg.histogram_sum(HistogramMetric::TourLength) - 1007.5).abs() < 1e-12);
        let snap = reg.snapshot();
        let h = &snap.histograms["tour_length"];
        assert_eq!(h.buckets[0], 1); // 0.5
        assert_eq!(h.buckets[1], 1); // 1.0
        assert_eq!(h.buckets[2], 2); // 3.0 twice
        assert_eq!(h.buckets[10], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn absorb_is_exact_and_order_deterministic() {
        let make = |seed: u64| {
            let reg = Registry::new();
            reg.incr(Metric::CtrwHops, seed);
            reg.observe(HistogramMetric::SampleCost, seed as f64 + 0.125);
            reg
        };
        let parts: Vec<Registry> = (1..=4).map(make).collect();
        let a = Registry::new();
        let b = Registry::new();
        for p in &parts {
            a.absorb(p);
            b.absorb(p);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.counter(Metric::CtrwHops), 10);
        assert_eq!(a.histogram_count(HistogramMetric::SampleCost), 4);
        assert_eq!(
            a.histogram_sum(HistogramMetric::SampleCost).to_bits(),
            b.histogram_sum(HistogramMetric::SampleCost).to_bits(),
            "merged f64 sums must be bit-identical"
        );
    }

    #[test]
    fn gauges_are_last_write_wins_and_merge_by_max() {
        let reg = Registry::new();
        assert_eq!(reg.gauge(GaugeMetric::QueueDepth), 0);
        reg.set_gauge(GaugeMetric::QueueDepth, 7);
        reg.set_gauge(GaugeMetric::QueueDepth, 3);
        assert_eq!(reg.gauge(GaugeMetric::QueueDepth), 3);

        let other = Registry::new();
        other.set_gauge(GaugeMetric::QueueDepth, 5);
        other.set_gauge(GaugeMetric::EpochLag, 2);
        reg.absorb(&other);
        // 5 > 3 replaces; the untouched gauge takes the other's level.
        assert_eq!(reg.gauge(GaugeMetric::QueueDepth), 5);
        assert_eq!(reg.gauge(GaugeMetric::EpochLag), 2);

        let snap = reg.snapshot();
        assert_eq!(snap.gauges["queue_depth"], 5);
        assert_eq!(snap.gauges["epoch_lag"], 2);
    }

    #[test]
    fn snapshot_deserialises_without_gauges_field() {
        // Snapshots written before gauges existed must still load.
        let legacy = r#"{"message_total":0,"counters":{},"histograms":{}}"#;
        let snap: Snapshot = serde_json::from_str(legacy).expect("deserialise");
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = Registry::new();
        reg.incr(Metric::GossipMessages, 42);
        reg.observe(HistogramMetric::CtrwVirtualTime, 10.0);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serialise");
        let back: Snapshot = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(snap, back);
        assert_eq!(back.counters["gossip_messages"], 42);
        assert_eq!(back.message_total, 42);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        reg.incr(Metric::TourHops, 1);
                        reg.observe(HistogramMetric::TourLength, 2.0);
                    }
                });
            }
        });
        assert_eq!(reg.counter(Metric::TourHops), 4000);
        assert_eq!(reg.histogram_count(HistogramMetric::TourLength), 4000);
        assert!((reg.histogram_sum(HistogramMetric::TourLength) - 8000.0).abs() < 1e-9);
    }
}

//! Sampling-quality diagnostics.
//!
//! Lemma 1 of the paper bounds the total-variation distance between the
//! CTRW sample law and the uniform distribution. These helpers measure
//! that distance — empirically for any [`Sampler`], and exactly for the
//! CTRW via uniformization — plus a chi-square uniformity check, so both
//! the test-suite and the ablation benches can quantify sampler bias.

use std::fmt;
use std::ops::ControlFlow;

use census_graph::spectral::DenseIndex;
use census_graph::{Graph, NodeId, Topology};
use census_metrics::RunCtx;
use census_stats::{chi_square_uniform, total_variation};
use census_walk::continuous::{exact_distribution, Sojourn};
use census_walk::WalkError;
use rand::Rng;

use crate::{CtrwSampler, Sample, Sampler};

/// A statically detectable reason a sampler's output law is *not*
/// (asymptotically) uniform, found by [`audit_ctrw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerFlaw {
    /// Deterministic sojourns (`Sojourn::Deterministic`): each visit
    /// drains exactly `1/d_j`, so on regular bipartite overlays the hop
    /// count at timer death is a deterministic function of the timer and
    /// the walk can never cross the bipartition parity — the paper's
    /// Remark 1. The resulting law is biased no matter how large the
    /// timer is, which silently skews any estimator built on it.
    DeterministicSojourns,
}

impl fmt::Display for SamplerFlaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerFlaw::DeterministicSojourns => write!(
                f,
                "deterministic sojourns are a biased sampler (Remark 1: \
                 the walk cannot mix across a bipartition, so its law \
                 never converges to uniform)"
            ),
        }
    }
}

impl std::error::Error for SamplerFlaw {}

/// Audits a [`CtrwSampler`] configuration for statically detectable
/// soundness flaws, before any sample is drawn.
///
/// Today this flags exactly one thing: the deterministic-sojourn variant,
/// which Remark 1 shows to be unsound for uniform sampling (it exists for
/// the ablation benches, not for estimation). Estimators that *require*
/// uniform samples — Sample & Collide's collision statistics assume them —
/// should refuse a flawed sampler instead of producing a silently skewed
/// estimate; `census_core::sample_collide::AdaptiveSampleCollide` does.
///
/// # Errors
///
/// Returns the [`SamplerFlaw`] making the sampler unsound, if any.
pub fn audit_ctrw(sampler: &CtrwSampler) -> Result<(), SamplerFlaw> {
    match sampler.sojourn() {
        Sojourn::Exponential => Ok(()),
        Sojourn::Deterministic => Err(SamplerFlaw::DeterministicSojourns),
    }
}

/// Wraps a sampler so every draw starts from a freshly drawn uniform
/// initiator. Reproduces the historical RNG order of the quality loops —
/// one `any_peer` draw, then the inner sample — while letting the loop
/// itself ride [`Sampler::sample_many`]. The anchor node passed to the
/// batch call is ignored.
struct UniformInitiator<'s, S>(&'s S);

impl<S: Sampler> Sampler for UniformInitiator<'_, S> {
    fn sample<T, R>(&self, topology: &T, _anchor: NodeId, rng: &mut R) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let initiator = topology.any_peer(rng).expect("graph is non-empty");
        self.0.sample(topology, initiator, rng)
    }
}

/// Draws `runs` samples (each from a uniformly random initiator) and
/// returns per-node observation counts in [`DenseIndex`] order, together
/// with the index.
///
/// Initiators are randomised per draw so the measured law is the
/// initiator-averaged one; for a fixed-initiator law, wrap the sampler
/// yourself.
///
/// # Panics
///
/// Panics if the graph is empty, `runs` is zero, or the sampler fails
/// (isolated initiator).
pub fn sample_counts<S, R>(sampler: &S, g: &Graph, runs: u32, rng: &mut R) -> (DenseIndex, Vec<u64>)
where
    S: Sampler,
    R: Rng,
{
    assert!(runs > 0, "need at least one sampling run");
    let idx = DenseIndex::new(g);
    assert!(!idx.is_empty(), "cannot sample an empty overlay");
    let mut counts = vec![0u64; idx.len()];
    let anchor = g.nodes().next().expect("non-empty overlay");
    let wrapped = UniformInitiator(sampler);
    let mut ctx = RunCtx::new(g, rng);
    wrapped
        .sample_many(&mut ctx, anchor, u64::from(runs), |s, _cost| {
            counts[idx.dense(s.node)] += 1;
            ControlFlow::Continue(())
        })
        .expect("sampling failed (isolated initiator?)");
    (idx, counts)
}

/// Empirical total-variation distance between a sampler's output law and
/// the uniform distribution over live nodes.
///
/// Note the estimator is biased upwards by sampling noise of order
/// `√(N / runs)`; use `runs ≫ N` for meaningful values.
///
/// # Panics
///
/// Panics under the same conditions as [`sample_counts`].
pub fn empirical_tv_to_uniform<S, R>(sampler: &S, g: &Graph, runs: u32, rng: &mut R) -> f64
where
    S: Sampler,
    R: Rng,
{
    let (idx, counts) = sample_counts(sampler, g, runs, rng);
    let n = idx.len();
    let empirical: Vec<f64> = counts.iter().map(|&c| c as f64 / f64::from(runs)).collect();
    let uniform = vec![1.0 / n as f64; n];
    total_variation(&empirical, &uniform)
}

/// Chi-square uniformity statistic of a sampler's output, returned as
/// `(statistic, degrees_of_freedom)`. Under perfect uniformity the
/// statistic concentrates near `dof` with standard deviation `√(2·dof)`.
///
/// # Panics
///
/// Panics under the same conditions as [`sample_counts`].
pub fn chi_square_uniformity<S, R>(sampler: &S, g: &Graph, runs: u32, rng: &mut R) -> (f64, usize)
where
    S: Sampler,
    R: Rng,
{
    let (_, counts) = sample_counts(sampler, g, runs, rng);
    let pairs: Vec<(usize, u64)> = counts.iter().copied().enumerate().collect();
    chi_square_uniform(&pairs, counts.len())
}

/// *Exact* total-variation distance of the CTRW sample law from uniform,
/// for a given initiator and timer — no sampling noise, via the
/// uniformization oracle. This is the left-hand side of Lemma 1.
///
/// # Panics
///
/// Panics if the graph is empty or the initiator is dead.
#[must_use]
pub fn exact_ctrw_tv_to_uniform(g: &Graph, initiator: census_graph::NodeId, timer: f64) -> f64 {
    let dist = exact_distribution(g, initiator, timer);
    let n = dist.len();
    let uniform = vec![1.0 / n as f64; n];
    total_variation(&dist, &uniform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtrwSampler, DtrwSampler};
    use census_graph::{generators, spectral, NodeId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn counts_total_matches_runs() {
        let g = generators::ring(6);
        let mut rng = SmallRng::seed_from_u64(1);
        let (_, counts) = sample_counts(&CtrwSampler::new(2.0), &g, 500, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 500);
    }

    #[test]
    fn chi_square_accepts_ctrw_and_rejects_dtrw_on_star() {
        let g = generators::star(10);
        let mut rng = SmallRng::seed_from_u64(2);
        let runs = 20_000;
        let (ctrw_stat, dof) = chi_square_uniformity(&CtrwSampler::new(25.0), &g, runs, &mut rng);
        let threshold = dof as f64 + 5.0 * (2.0 * dof as f64).sqrt();
        assert!(
            ctrw_stat < threshold,
            "CTRW chi2 {ctrw_stat} vs {threshold}"
        );
        // Odd step count: the star is bipartite, so the walk's parity
        // concentrates odd-length walks on the hub.
        let (dtrw_stat, _) = chi_square_uniformity(&DtrwSampler::new(51), &g, runs, &mut rng);
        assert!(
            dtrw_stat > 10.0 * threshold,
            "DTRW chi2 {dtrw_stat} should explode on the star"
        );
    }

    #[test]
    fn lemma_1_bound_holds_exactly_across_topologies() {
        let mut rng = SmallRng::seed_from_u64(3);
        let graphs = vec![
            generators::ring(12),
            generators::hypercube(3),
            generators::star(9),
            generators::erdos_renyi(20, 0.3, &mut rng),
        ];
        for g in &graphs {
            if !census_graph::algo::is_connected(g) {
                continue;
            }
            let gap = spectral::spectral_gap(g);
            let n = g.num_nodes() as f64;
            let start = g.nodes().next().expect("non-empty");
            for t in [0.2, 1.0, 3.0] {
                let tv = exact_ctrw_tv_to_uniform(g, start, t);
                let bound = 0.5 * n.sqrt() * (-gap * t).exp();
                assert!(
                    tv <= bound + 1e-8,
                    "Lemma 1 violated on n={n}: tv {tv} > bound {bound} at t={t}"
                );
            }
        }
    }

    #[test]
    fn exact_tv_decays_exponentially_at_rate_lambda2() {
        // For large t, d_TV(t) ~ C e^{-lambda_2 t}: the measured decay rate
        // between two well-mixed times should approach lambda_2.
        let g = generators::ring(10);
        let gap = spectral::spectral_gap(&g);
        let (t1, t2) = (8.0, 12.0);
        let tv1 = exact_ctrw_tv_to_uniform(&g, NodeId::new(0), t1);
        let tv2 = exact_ctrw_tv_to_uniform(&g, NodeId::new(0), t2);
        let rate = (tv1 / tv2).ln() / (t2 - t1);
        assert!(
            (rate - gap).abs() < 0.05 * gap,
            "decay rate {rate} vs spectral gap {gap}"
        );
    }

    #[test]
    fn audit_flags_deterministic_sojourns_and_passes_exponential() {
        assert_eq!(audit_ctrw(&CtrwSampler::new(10.0)), Ok(()));
        assert_eq!(
            audit_ctrw(&CtrwSampler::with_deterministic_sojourns(10.0)),
            Err(SamplerFlaw::DeterministicSojourns)
        );
        // The flaw explains itself in Remark-1 terms.
        let msg = SamplerFlaw::DeterministicSojourns.to_string();
        assert!(msg.contains("Remark 1"), "unhelpful flaw message: {msg}");
    }

    #[test]
    fn the_flagged_variant_really_is_biased_where_the_sound_one_is_not() {
        // The audit is not paranoia: on a regular bipartite overlay the
        // deterministic variant's integer-timer law is stuck on one side.
        // K_{3,3}: 3-regular, bipartite, spectral gap 3 — the exponential
        // variant mixes almost perfectly at T = 4 while the deterministic
        // one takes exactly 11 hops (odd) and never leaves the far side.
        let mut rng = SmallRng::seed_from_u64(14);
        let g = generators::complete_bipartite(3, 3);
        let flagged = CtrwSampler::with_deterministic_sojourns(4.0);
        let sound = CtrwSampler::new(4.0);
        struct Fixed<S>(S, NodeId);
        impl<S: Sampler> Sampler for Fixed<S> {
            fn sample<T, R>(
                &self,
                topology: &T,
                _initiator: NodeId,
                rng: &mut R,
            ) -> Result<crate::Sample, census_walk::WalkError>
            where
                T: Topology + ?Sized,
                R: Rng,
            {
                self.0.sample(topology, self.1, rng)
            }
        }
        let tv_flagged =
            empirical_tv_to_uniform(&Fixed(flagged, NodeId::new(0)), &g, 20_000, &mut rng);
        let tv_sound = empirical_tv_to_uniform(&Fixed(sound, NodeId::new(0)), &g, 20_000, &mut rng);
        // One side holds half the mass, so the stuck law's TV is ~1/2.
        assert!(tv_flagged > 0.4, "deterministic TV {tv_flagged}");
        assert!(tv_sound < 0.1, "exponential TV {tv_sound}");
    }

    #[test]
    fn empirical_tv_close_to_exact_for_fixed_initiator() {
        struct Fixed<S>(S, NodeId);
        impl<S: Sampler> Sampler for Fixed<S> {
            fn sample<T, R>(
                &self,
                topology: &T,
                _initiator: NodeId,
                rng: &mut R,
            ) -> Result<crate::Sample, census_walk::WalkError>
            where
                T: Topology + ?Sized,
                R: Rng,
            {
                self.0.sample(topology, self.1, rng)
            }
        }
        let g = generators::ring(8);
        let mut rng = SmallRng::seed_from_u64(4);
        let t = 1.0;
        let exact = exact_ctrw_tv_to_uniform(&g, NodeId::new(0), t);
        let empirical = empirical_tv_to_uniform(
            &Fixed(CtrwSampler::new(t), NodeId::new(0)),
            &g,
            200_000,
            &mut rng,
        );
        assert!(
            (empirical - exact).abs() < 0.02,
            "empirical {empirical} vs exact {exact}"
        );
    }
}

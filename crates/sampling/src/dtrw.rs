//! The degree-biased DTRW baseline sampler.

use census_graph::{NodeId, Topology};
use census_walk::discrete::walk_fixed_steps;
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, Sampler};

/// Prior-work sampler: a discrete-time random walk stopped after a fixed
/// number of steps.
///
/// Its limiting distribution is `π_j = d_j / Σ_k d_k` (Eq. (1)), so on any
/// overlay with unequal degrees the samples are biased towards high-degree
/// peers *no matter how many steps are taken*. The paper's §4.1 replaces
/// it with [`crate::CtrwSampler`]; this type exists as the comparison
/// baseline for the sampler-bias ablation, and to quantify exactly how
/// wrong size estimates become when Sample & Collide is fed biased
/// samples.
///
/// # Examples
///
/// ```
/// use census_sampling::DtrwSampler;
///
/// let sampler = DtrwSampler::new(50);
/// assert_eq!(sampler.steps(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtrwSampler {
    steps: u64,
}

impl DtrwSampler {
    /// Creates a sampler walking exactly `steps` hops.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero (the "sample" would always be the
    /// initiator).
    #[must_use]
    pub fn new(steps: u64) -> Self {
        assert!(steps > 0, "a zero-step walk cannot sample");
        Self { steps }
    }

    /// The configured walk length.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl Sampler for DtrwSampler {
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let node = walk_fixed_steps(topology, initiator, self.steps, rng)?;
        Ok(Sample {
            node,
            hops: self.steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use census_graph::{generators, Graph, NodeId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parity_locked_on_bipartite_star() {
        // The star is bipartite, so the DTRW never converges at all: an
        // odd-length walk from a uniform initiator puts mass 7/8 on the
        // hub (every leaf start ends there), for TV exactly 3/4.
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = DtrwSampler::new(101);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 20_000, &mut rng);
        assert!(
            (tv - 0.75).abs() < 0.03,
            "odd-step DTRW TV {tv} should sit near the parity bias 0.75"
        );
    }

    #[test]
    fn biased_towards_high_degree_nodes() {
        // Non-bipartite irregular graph: star(8) plus one leaf-leaf edge.
        // The walk converges to pi_j = d_j / 2|E| whatever the start, so
        // TV to uniform is (1/2) * sum |d_j/16 - 2/16| = 5/16.
        let mut g = generators::star(8);
        g.add_edge(NodeId::new(1), NodeId::new(2))
            .expect("fresh edge");
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = DtrwSampler::new(100);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 40_000, &mut rng);
        let stationary_bias = 5.0 / 16.0;
        assert!(
            (tv - stationary_bias).abs() < 0.03,
            "DTRW TV {tv} should sit near the degree bias {stationary_bias}"
        );
    }

    #[test]
    fn unbiased_on_regular_graphs() {
        // On regular graphs the degree bias vanishes; a long odd+even mix of
        // start parities on a non-bipartite regular graph is near uniform.
        let g = generators::complete(10);
        let mut rng = SmallRng::seed_from_u64(2);
        let sampler = DtrwSampler::new(20);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 30_000, &mut rng);
        assert!(tv < 0.03, "DTRW on K_10 should be near uniform, TV {tv}");
    }

    #[test]
    fn isolated_initiator_is_stuck() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(3);
        let sampler = DtrwSampler::new(5);
        assert_eq!(sampler.sample(&g, a, &mut rng), Err(WalkError::Stuck(a)));
    }

    #[test]
    fn cost_equals_steps() {
        let g = generators::ring(12);
        let mut rng = SmallRng::seed_from_u64(4);
        let sampler = DtrwSampler::new(17);
        let s = sampler
            .sample(&g, NodeId::new(0), &mut rng)
            .expect("walk completes");
        assert_eq!(s.hops, 17);
    }

    #[test]
    #[should_panic(expected = "zero-step")]
    fn zero_steps_panics() {
        let _ = DtrwSampler::new(0);
    }
}

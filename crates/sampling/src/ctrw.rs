//! The paper's CTRW-based uniform sampler (§4.1).

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use census_walk::continuous::{ctrw_walk, ctrw_walk_ctx, Sojourn};
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, Sampler};

/// The continuous-time random walk sampler of §4.1.
///
/// A sampling message carries a timer initialised to `T`. Each node it
/// visits draws `u ~ Uniform(0, 1]`, decrements the timer by
/// `−ln(u)/d_j`, and either answers the initiator (timer expired: it is
/// the sample) or forwards the message to a uniformly random neighbour.
/// The returned peer is distributed as the standard CTRW at time `T`, so
/// by Lemma 1 its law is within total-variation distance
/// `½ √N e^(−λ₂ T)` of uniform.
///
/// Choosing `T`: the paper suggests `T = O(log N / λ₂)` and, since both
/// `N` and `λ₂` are unknown a priori, either a conservative constant from
/// assumed bounds (its experiments use `T = 10`) or the adaptive
/// double-`T`-until-stable loop implemented by
/// `census_core::sample_collide::AdaptiveSampleCollide`.
/// [`census_graph::spectral::mixing_timer`] computes the Lemma 1 value
/// when the gap is known.
///
/// # Examples
///
/// ```
/// use census_sampling::CtrwSampler;
///
/// let sampler = CtrwSampler::new(10.0); // the paper's experimental setting
/// assert_eq!(sampler.timer(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrwSampler {
    timer: f64,
    sojourn: Sojourn,
}

impl CtrwSampler {
    /// Creates a sampler with exponential sojourns (the sound variant).
    ///
    /// # Panics
    ///
    /// Panics if `timer` is not positive and finite.
    #[must_use]
    pub fn new(timer: f64) -> Self {
        assert!(
            timer.is_finite() && timer > 0.0,
            "sampler timer must be positive and finite"
        );
        Self {
            timer,
            sojourn: Sojourn::Exponential,
        }
    }

    /// Creates a sampler with *deterministic* sojourns — the Remark 1
    /// variant that saves per-hop randomness but fails on (near-)bipartite
    /// overlays. Provided for the ablation benches; do not use for real
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `timer` is not positive and finite.
    #[must_use]
    pub fn with_deterministic_sojourns(timer: f64) -> Self {
        let mut s = Self::new(timer);
        s.sojourn = Sojourn::Deterministic;
        s
    }

    /// The configured timer `T`.
    #[must_use]
    pub fn timer(&self) -> f64 {
        self.timer
    }

    /// The configured sojourn-time law.
    #[must_use]
    pub fn sojourn(&self) -> Sojourn {
        self.sojourn
    }
}

impl Sampler for CtrwSampler {
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let out = ctrw_walk(topology, initiator, self.timer, self.sojourn, rng)?;
        Ok(Sample {
            node: out.node,
            hops: out.hops,
        })
    }

    /// Records through [`ctrw_walk_ctx`], so the hops land on
    /// [`Metric::CtrwHops`] (not the generic [`Metric::SampleHops`]) and
    /// the walk's sojourn draws and virtual time are captured too.
    fn sample_ctx<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let out = ctrw_walk_ctx(ctx, initiator, self.timer, self.sojourn)?;
        ctx.on_event(Metric::SamplesDrawn, 1);
        ctx.observe(HistogramMetric::SampleCost, out.hops as f64);
        Ok(Sample {
            node: out.node,
            hops: out.hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use census_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_near_uniform_on_star() {
        // The star graph maximally separates CTRW from DTRW behaviour.
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = CtrwSampler::new(25.0);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 40_000, &mut rng);
        assert!(tv < 0.03, "CTRW TV distance {tv} too large on the star");
    }

    #[test]
    fn samples_are_near_uniform_on_scale_free_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let sampler = CtrwSampler::new(8.0);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 60_000, &mut rng);
        assert!(tv < 0.08, "CTRW TV distance {tv} too large on scale-free");
    }

    #[test]
    fn longer_timers_improve_uniformity() {
        // Fixed initiator (averaging over initiators would hide the
        // mixing behaviour by symmetry); the exact oracle removes noise.
        let g = generators::ring(16);
        let start = g.nodes().next().expect("non-empty");
        let tv_short = quality::exact_ctrw_tv_to_uniform(&g, start, 1.0);
        let tv_long = quality::exact_ctrw_tv_to_uniform(&g, start, 40.0);
        assert!(
            tv_long < tv_short / 10.0,
            "short {tv_short} vs long {tv_long}"
        );
    }

    #[test]
    fn cost_scales_with_timer() {
        let g = generators::complete(9); // 8-regular
        let mut rng = SmallRng::seed_from_u64(4);
        let mut mean_hops = |t: f64| {
            let sampler = CtrwSampler::new(t);
            let runs = 2_000u32;
            let total: u64 = (0..runs)
                .map(|_| {
                    sampler
                        .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
                        .expect("cannot fail")
                        .hops
                })
                .sum();
            total as f64 / f64::from(runs)
        };
        let h1 = mean_hops(2.0);
        let h2 = mean_hops(8.0);
        assert!(
            (h2 / h1 - 4.0).abs() < 0.5,
            "hop cost should scale linearly with T: {h1} vs {h2}"
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_finite_timer_panics() {
        let _ = CtrwSampler::new(f64::INFINITY);
    }
}

//! The paper's CTRW-based uniform sampler (§4.1).

use std::ops::ControlFlow;

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use census_walk::continuous::{ctrw_walk, ctrw_walk_ctx, Sojourn};
use census_walk::frontier::{ctrw_frontier_with, CtrwSpec, FrontierMode};
use census_walk::stream::{stream_seed, SplitMix64, StreamDomain};
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, SampleBatch, Sampler};

/// Frontier width of the batched [`Sampler::sample_many`] override: wide
/// enough to keep many CSR loads in flight, small enough that a Sample &
/// Collide break mid-chunk wastes little work.
const BATCH_WIDTH: u64 = 64;

/// The continuous-time random walk sampler of §4.1.
///
/// A sampling message carries a timer initialised to `T`. Each node it
/// visits draws `u ~ Uniform(0, 1]`, decrements the timer by
/// `−ln(u)/d_j`, and either answers the initiator (timer expired: it is
/// the sample) or forwards the message to a uniformly random neighbour.
/// The returned peer is distributed as the standard CTRW at time `T`, so
/// by Lemma 1 its law is within total-variation distance
/// `½ √N e^(−λ₂ T)` of uniform.
///
/// Choosing `T`: the paper suggests `T = O(log N / λ₂)` and, since both
/// `N` and `λ₂` are unknown a priori, either a conservative constant from
/// assumed bounds (its experiments use `T = 10`) or the adaptive
/// double-`T`-until-stable loop implemented by
/// `census_core::sample_collide::AdaptiveSampleCollide`.
/// [`census_graph::spectral::mixing_timer`] computes the Lemma 1 value
/// when the gap is known.
///
/// # Examples
///
/// ```
/// use census_sampling::CtrwSampler;
///
/// let sampler = CtrwSampler::new(10.0); // the paper's experimental setting
/// assert_eq!(sampler.timer(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrwSampler {
    timer: f64,
    sojourn: Sojourn,
    mode: FrontierMode,
}

impl CtrwSampler {
    /// Creates a sampler with exponential sojourns (the sound variant).
    ///
    /// # Panics
    ///
    /// Panics if `timer` is not positive and finite.
    #[must_use]
    pub fn new(timer: f64) -> Self {
        assert!(
            timer.is_finite() && timer > 0.0,
            "sampler timer must be positive and finite"
        );
        Self {
            timer,
            sojourn: Sojourn::Exponential,
            mode: FrontierMode::default(),
        }
    }

    /// Creates a sampler with *deterministic* sojourns — the Remark 1
    /// variant that saves per-hop randomness but fails on (near-)bipartite
    /// overlays. Provided for the ablation benches; do not use for real
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `timer` is not positive and finite.
    #[must_use]
    pub fn with_deterministic_sojourns(timer: f64) -> Self {
        let mut s = Self::new(timer);
        s.sojourn = Sojourn::Deterministic;
        s
    }

    /// Selects the frontier execution mode of [`Sampler::sample_many`]
    /// (serial [`Sampler::sample`] calls are unaffected). The default —
    /// [`FrontierMode::Exact`] with everything tuned on — keeps batched
    /// samples bit-identical to their per-walk serial twins;
    /// [`FrontierMode::FastStatEq`] trades that for throughput while
    /// preserving the sample *law* (see `census-walk`'s frontier docs).
    #[must_use]
    pub fn with_frontier_mode(mut self, mode: FrontierMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured frontier execution mode.
    #[must_use]
    pub fn frontier_mode(&self) -> FrontierMode {
        self.mode
    }

    /// The configured timer `T`.
    #[must_use]
    pub fn timer(&self) -> f64 {
        self.timer
    }

    /// The configured sojourn-time law.
    #[must_use]
    pub fn sojourn(&self) -> Sojourn {
        self.sojourn
    }
}

impl Sampler for CtrwSampler {
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let out = ctrw_walk(topology, initiator, self.timer, self.sojourn, rng)?;
        Ok(Sample {
            node: out.node,
            hops: out.hops,
        })
    }

    /// Records through [`ctrw_walk_ctx`], so the hops land on
    /// [`Metric::CtrwHops`] (not the generic [`Metric::SampleHops`]) and
    /// the walk's sojourn draws and virtual time are captured too.
    fn sample_ctx<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let out = ctrw_walk_ctx(ctx, initiator, self.timer, self.sojourn)?;
        ctx.on_event(Metric::SamplesDrawn, 1);
        ctx.observe(HistogramMetric::SampleCost, out.hops as f64);
        Ok(Sample {
            node: out.node,
            hops: out.hops,
        })
    }

    /// Batched override: draws samples in frontiers of [`BATCH_WIDTH`]
    /// concurrent walks over the context's topology (Sample & Collide's
    /// inner loop, and the reason `perf-probe --batched` exists).
    ///
    /// One `u64` from the context's RNG seeds each chunk; walk `i` of the
    /// chunk then runs on its own tagged SplitMix64 stream
    /// (`stream_seed(FrontierWalk, chunk_seed, i)`), so every sample is
    /// still an honest CTRW draw — the sample *law* is exactly the serial
    /// sampler's, only the stream layout differs. Samples are reported in
    /// walk order with the serial per-sample accounting (`CtrwHops`,
    /// `SojournDraws`, `CtrwVirtualTime`, `SamplesDrawn`, `SampleCost`);
    /// when `on_sample` breaks mid-chunk, the chunk's surplus walks are
    /// discarded *uncharged*, preserving the ledger invariant that the
    /// registry's message total equals the reported batch cost.
    ///
    /// All of the above holds verbatim in the default exact mode; under
    /// [`Self::with_frontier_mode`]`(FrontierMode::FastStatEq)` each
    /// chunk's walks instead drain one pooled block-SplitMix64 stream, so
    /// samples keep the serial *law* (and per-sample accounting) but are
    /// no longer bit-comparable to per-walk serial twins.
    ///
    /// # Errors
    ///
    /// As the default loop: the first failed walk (possible only under
    /// fault-injecting topologies) surfaces after its spent hops and
    /// draws are charged; earlier samples were already reported.
    fn sample_many<T, R, Rec, F>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
        max_samples: u64,
        mut on_sample: F,
    ) -> Result<SampleBatch, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
        F: FnMut(Sample, u64) -> ControlFlow<()>,
    {
        let mut batch = SampleBatch::default();
        let mut remaining = max_samples;
        while remaining > 0 {
            let width = remaining.min(BATCH_WIDTH);
            let chunk_seed: u64 = ctx.rng.random();
            let mut specs: Vec<CtrwSpec<&T, SplitMix64>> = (0..width)
                .map(|i| CtrwSpec {
                    topology: ctx.topology,
                    rng: SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, chunk_seed, i)),
                    start: initiator,
                    timer: self.timer,
                    sojourn: self.sojourn,
                })
                .collect();
            for fate in ctrw_frontier_with(&mut specs, self.mode, ctx.recorder) {
                // The walk's true traffic is charged whether it sampled
                // or was lost to a fault — exactly as the serial path.
                ctx.on_message(Metric::CtrwHops, fate.hops);
                ctx.on_event(Metric::SojournDraws, fate.draws);
                let out = fate.result?;
                ctx.observe(HistogramMetric::CtrwVirtualTime, self.timer);
                ctx.on_event(Metric::SamplesDrawn, 1);
                ctx.observe(HistogramMetric::SampleCost, out.hops as f64);
                batch.samples += 1;
                batch.messages += out.hops;
                remaining -= 1;
                let sample = Sample {
                    node: out.node,
                    hops: out.hops,
                };
                if on_sample(sample, out.hops).is_break() {
                    return Ok(batch);
                }
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use census_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_near_uniform_on_star() {
        // The star graph maximally separates CTRW from DTRW behaviour.
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = CtrwSampler::new(25.0);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 40_000, &mut rng);
        assert!(tv < 0.03, "CTRW TV distance {tv} too large on the star");
    }

    #[test]
    fn samples_are_near_uniform_on_scale_free_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let sampler = CtrwSampler::new(8.0);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 60_000, &mut rng);
        assert!(tv < 0.08, "CTRW TV distance {tv} too large on scale-free");
    }

    #[test]
    fn longer_timers_improve_uniformity() {
        // Fixed initiator (averaging over initiators would hide the
        // mixing behaviour by symmetry); the exact oracle removes noise.
        let g = generators::ring(16);
        let start = g.nodes().next().expect("non-empty");
        let tv_short = quality::exact_ctrw_tv_to_uniform(&g, start, 1.0);
        let tv_long = quality::exact_ctrw_tv_to_uniform(&g, start, 40.0);
        assert!(
            tv_long < tv_short / 10.0,
            "short {tv_short} vs long {tv_long}"
        );
    }

    #[test]
    fn cost_scales_with_timer() {
        let g = generators::complete(9); // 8-regular
        let mut rng = SmallRng::seed_from_u64(4);
        let mut mean_hops = |t: f64| {
            let sampler = CtrwSampler::new(t);
            let runs = 2_000u32;
            let total: u64 = (0..runs)
                .map(|_| {
                    sampler
                        .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
                        .expect("cannot fail")
                        .hops
                })
                .sum();
            total as f64 / f64::from(runs)
        };
        let h1 = mean_hops(2.0);
        let h2 = mean_hops(8.0);
        assert!(
            (h2 / h1 - 4.0).abs() < 0.5,
            "hop cost should scale linearly with T: {h1} vs {h2}"
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_finite_timer_panics() {
        let _ = CtrwSampler::new(f64::INFINITY);
    }

    #[test]
    fn batched_sample_many_matches_its_per_walk_serial_twins() {
        // The override's contract: sample k of a chunk is exactly the
        // serial ctrw_walk on the chunk's k-th tagged stream.
        use census_metrics::RunCtx;
        use census_walk::stream::{stream_seed, SplitMix64, StreamDomain};
        use std::ops::ControlFlow;

        let g = generators::complete(13);
        let start = g.nodes().next().expect("non-empty");
        let sampler = CtrwSampler::new(3.0);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut ctx = RunCtx::new(&g, &mut rng);
        let mut batched = Vec::new();
        sampler
            .sample_many(&mut ctx, start, 10, |s, _| {
                batched.push(s);
                ControlFlow::Continue(())
            })
            .expect("fault-free");

        let mut twin_rng = SmallRng::seed_from_u64(21);
        let chunk_seed: u64 = twin_rng.random();
        let serial: Vec<Sample> = (0..10u64)
            .map(|i| {
                let mut walk_rng =
                    SplitMix64::new(stream_seed(StreamDomain::FrontierWalk, chunk_seed, i));
                let out = ctrw_walk(&g, start, 3.0, Sojourn::Exponential, &mut walk_rng)
                    .expect("fault-free");
                Sample {
                    node: out.node,
                    hops: out.hops,
                }
            })
            .collect();
        assert_eq!(batched, serial, "batched samples must be serial walks");
    }

    #[test]
    fn batched_sample_many_keeps_the_ledger_on_early_break() {
        use census_metrics::{Registry, RunCtx};
        use std::ops::ControlFlow;

        let g = generators::complete(9);
        let start = g.nodes().next().expect("non-empty");
        let sampler = CtrwSampler::new(4.0);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        // Break deep inside a chunk: the surplus walks the frontier
        // already computed must not be charged.
        let mut left = 7u32;
        let batch = sampler
            .sample_many(&mut ctx, start, u64::MAX, move |_s, _c| {
                left -= 1;
                if left == 0 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .expect("fault-free");
        assert_eq!(batch.samples, 7);
        assert_eq!(reg.counter(Metric::SamplesDrawn), 7);
        assert_eq!(reg.counter(Metric::CtrwHops), batch.messages);
        assert_eq!(reg.message_total(), batch.messages, "ledger must close");
        assert_eq!(ctx.messages_total(), batch.messages);
    }

    #[test]
    fn fast_mode_sample_many_keeps_count_and_ledger() {
        // FastStatEq changes which bits each walk draws, not the
        // accounting contract: every requested sample arrives and the
        // registry's message total still closes against the batch.
        use census_metrics::{Registry, RunCtx};
        use std::ops::ControlFlow;

        let g = generators::complete(9);
        let start = g.nodes().next().expect("non-empty");
        let sampler = CtrwSampler::new(4.0).with_frontier_mode(FrontierMode::FastStatEq);
        assert_eq!(sampler.frontier_mode(), FrontierMode::FastStatEq);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let batch = sampler
            .sample_many(&mut ctx, start, 100, |_, _| ControlFlow::Continue(()))
            .expect("fault-free");
        assert_eq!(batch.samples, 100);
        assert_eq!(reg.counter(Metric::SamplesDrawn), 100);
        assert_eq!(reg.message_total(), batch.messages, "ledger must close");
    }

    #[test]
    fn batched_sample_many_stays_near_uniform() {
        // The law is unchanged by batching: near-uniform on the star,
        // where a degree-biased sampler would put mass 1/2 on the hub.
        use census_metrics::RunCtx;
        use std::ops::ControlFlow;

        let g = generators::star(8);
        let leaf = census_graph::NodeId::new(1);
        let sampler = CtrwSampler::new(25.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut ctx = RunCtx::new(&g, &mut rng);
        let runs = 40_000u64;
        let mut hub = 0u64;
        sampler
            .sample_many(&mut ctx, leaf, runs, |s, _| {
                if s.node == census_graph::NodeId::new(0) {
                    hub += 1;
                }
                ControlFlow::Continue(())
            })
            .expect("fault-free");
        let frac = hub as f64 / runs as f64;
        assert!(
            (frac - 1.0 / 8.0).abs() < 0.02,
            "hub mass {frac} should be ~1/8"
        );
    }
}

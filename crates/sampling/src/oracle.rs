//! A perfectly uniform oracle sampler (calibration only).

use census_graph::{NodeId, Topology};
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, Sampler};

/// A sampler that returns an exactly uniform peer using global knowledge.
///
/// No overlay protocol can implement this — it exists to *calibrate*: the
/// paper's Sample & Collide analysis (Prop. 3, Cor. 1) assumes perfect
/// uniform samples, so running the estimator over `OracleSampler`
/// separates estimator error from sampler error in tests and ablation
/// benches. Its message cost is reported as zero.
///
/// # Examples
///
/// ```
/// use census_graph::generators;
/// use census_sampling::{OracleSampler, Sampler};
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::ring(10);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let s = OracleSampler::new().sample(&g, g.nodes().next().unwrap(), &mut rng)?;
/// assert!(g.is_alive(s.node));
/// # Ok::<(), census_walk::WalkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleSampler;

impl OracleSampler {
    /// Creates the oracle sampler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Sampler for OracleSampler {
    fn sample<T, R>(
        &self,
        topology: &T,
        _initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let node = topology
            .any_peer(rng)
            .expect("cannot sample an empty overlay");
        Ok(Sample { node, hops: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use census_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_is_uniform_even_on_star() {
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let tv = quality::empirical_tv_to_uniform(&OracleSampler::new(), &g, 40_000, &mut rng);
        assert!(tv < 0.02, "oracle TV {tv}");
    }

    #[test]
    fn zero_cost() {
        let g = generators::ring(5);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = OracleSampler::new()
            .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
            .expect("cannot fail");
        assert_eq!(s.hops, 0);
    }
}

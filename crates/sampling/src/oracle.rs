//! Oracle samplers drawing from known laws using global knowledge
//! (calibration only).

use census_graph::{AliasTables, FrozenView, NodeId, Topology};
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, Sampler};

/// A sampler that returns an exactly uniform peer using global knowledge.
///
/// No overlay protocol can implement this — it exists to *calibrate*: the
/// paper's Sample & Collide analysis (Prop. 3, Cor. 1) assumes perfect
/// uniform samples, so running the estimator over `OracleSampler`
/// separates estimator error from sampler error in tests and ablation
/// benches. Its message cost is reported as zero.
///
/// # Examples
///
/// ```
/// use census_graph::generators;
/// use census_sampling::{OracleSampler, Sampler};
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let g = generators::ring(10);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let s = OracleSampler::new().sample(&g, g.nodes().next().unwrap(), &mut rng)?;
/// assert!(g.is_alive(s.node));
/// # Ok::<(), census_walk::WalkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleSampler;

impl OracleSampler {
    /// Creates the oracle sampler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Sampler for OracleSampler {
    fn sample<T, R>(
        &self,
        topology: &T,
        _initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let node = topology
            .any_peer(rng)
            .expect("cannot sample an empty overlay");
        Ok(Sample { node, hops: 0 })
    }
}

/// A sampler that returns a peer from the exact *degree* law
/// `π(i) = d_i / Σ_j d_j` using global knowledge — the stationary
/// distribution of the discrete-time random walk, i.e. the bias §4.1's
/// CTRW corrects.
///
/// Like [`OracleSampler`], no protocol can implement it; it exists to
/// calibrate. Where `OracleSampler` is the uniform reference, this is the
/// degree-law reference: chi-square harnesses validating degree-weighted
/// machinery (the frontier kernels' alias-table start selection, DTRW
/// endpoint laws) compare empirical draws against it. Built on
/// [`FrozenView::alias_tables`], so each sample costs exactly two RNG
/// draws and O(1) work; message cost is reported as zero.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeOracleSampler {
    tables: AliasTables,
}

impl DegreeOracleSampler {
    /// Precomputes the degree law of `view`'s live peers.
    #[must_use]
    pub fn new(view: &FrozenView) -> Self {
        Self {
            tables: view.alias_tables(),
        }
    }

    /// The encoded law, as `(node, probability)` pairs over live peers —
    /// the exact expected frequencies for chi-square validation.
    #[must_use]
    pub fn law(&self) -> Vec<(NodeId, f64)> {
        self.tables.encoded_mass()
    }
}

impl Sampler for DegreeOracleSampler {
    /// Draws from the precomputed tables; the `topology` argument is
    /// ignored (the law was pinned at construction).
    fn sample<T, R>(
        &self,
        _topology: &T,
        _initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let node = self
            .tables
            .sample(rng)
            .expect("cannot sample an edgeless overlay");
        Ok(Sample { node, hops: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use census_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_is_uniform_even_on_star() {
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let tv = quality::empirical_tv_to_uniform(&OracleSampler::new(), &g, 40_000, &mut rng);
        assert!(tv < 0.02, "oracle TV {tv}");
    }

    #[test]
    fn degree_oracle_matches_the_degree_law_on_star() {
        // Star on 8 leaves: hub degree 8, leaves degree 1 — hub mass 1/2.
        let g = generators::star(8);
        let frozen = g.freeze();
        let oracle = DegreeOracleSampler::new(&frozen);
        let hub_mass = oracle
            .law()
            .iter()
            .find(|(n, _)| n.index() == 0)
            .map(|&(_, p)| p)
            .expect("hub in law");
        assert!((hub_mass - 0.5).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(11);
        let runs = 40_000u32;
        let mut hub = 0u64;
        for _ in 0..runs {
            let s = oracle
                .sample(&frozen, NodeId::new(1), &mut rng)
                .expect("cannot fail");
            assert_eq!(s.hops, 0);
            if s.node.index() == 0 {
                hub += 1;
            }
        }
        let frac = hub as f64 / f64::from(runs);
        assert!((frac - 0.5).abs() < 0.01, "hub mass {frac} should be ~1/2");
    }

    #[test]
    fn zero_cost() {
        let g = generators::ring(5);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = OracleSampler::new()
            .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
            .expect("cannot fail");
        assert_eq!(s.hops, 0);
    }
}

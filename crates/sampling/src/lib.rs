//! Uniform peer sampling over overlay networks.
//!
//! The Sample & Collide estimator — and many overlay protocols beyond it
//! (neighbour selection for joining nodes, gossip target choice) — needs a
//! primitive that returns a peer chosen *uniformly at random* using only
//! local knowledge. This crate implements the paper's solution and the
//! baselines it improves on:
//!
//! - [`CtrwSampler`]: the paper's §4.1 sampler. Emulates a continuous-time
//!   random walk for a configured timer `T`; by Lemma 1 the returned peer
//!   is within total-variation distance `½√N·e^(−λ₂T)` of uniform,
//!   regardless of the degree distribution.
//! - [`DtrwSampler`]: the prior-work baseline — a discrete-time walk
//!   stopped after a fixed number of steps. Converges to the
//!   *degree-biased* distribution `d_j / Σd`, so it is inherently unsound
//!   on heterogeneous overlays (the paper's motivation for the CTRW).
//! - [`MetropolisSampler`]: a classical alternative fix — a
//!   Metropolis–Hastings walk whose acceptance ratio `min(1, d_u/d_v)`
//!   makes the uniform distribution stationary. Included as an extension
//!   baseline for the sampler-bias ablation.
//! - [`HardenedMetropolisSampler`]: the Byzantine-resistant variant —
//!   the same chain over *audited* degrees (neighbours-of-neighbours
//!   spot checks against the mutually-verified edge set) with a
//!   min-degree clamp, so degree-lying peers cannot attract or repel the
//!   walk; identical to the plain sampler on honest overlays.
//!
//! The [`quality`] module measures how close a sampler's output law is to
//! uniform (empirically, and exactly for the CTRW via uniformization).
//!
//! # Examples
//!
//! ```
//! use census_graph::generators;
//! use census_sampling::{CtrwSampler, Sampler};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let g = generators::complete(50);
//! let mut rng = SmallRng::seed_from_u64(1);
//! let initiator = g.nodes().next().expect("non-empty");
//! let sampler = CtrwSampler::new(10.0);
//! let sample = sampler.sample(&g, initiator, &mut rng)?;
//! assert!(g.is_alive(sample.node));
//! # Ok::<(), census_walk::WalkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod quality;

mod ctrw;
mod dtrw;
mod hardened;
mod metropolis;
mod oracle;

use std::ops::ControlFlow;

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use census_walk::WalkError;
use rand::Rng;

pub use ctrw::CtrwSampler;
pub use dtrw::DtrwSampler;
pub use hardened::HardenedMetropolisSampler;
pub use metropolis::MetropolisSampler;
pub use oracle::{DegreeOracleSampler, OracleSampler};

/// A peer returned by a sampler, with its message cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// The sampled peer.
    pub node: NodeId,
    /// Overlay messages spent obtaining it (walk hops; the reply to the
    /// initiator is not counted, matching the paper's cost accounting).
    pub hops: u64,
}

/// Aggregate outcome of a [`Sampler::sample_many`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleBatch {
    /// Samples actually drawn (≤ the requested maximum if the visitor
    /// broke early).
    pub samples: u64,
    /// Total overlay messages spent across those samples.
    pub messages: u64,
}

/// A peer-sampling strategy: returns one (approximately uniform) peer per
/// invocation, starting from an initiating peer.
///
/// Implementors provide [`Sampler::sample`]; the `_ctx` forms are
/// provided on top of it and add cost accounting through a
/// [`RunCtx`]. Samplers with a dedicated hop metric (CTRW, Metropolis)
/// override [`Sampler::sample_ctx`] to record through their walk engine
/// instead of the generic [`Metric::SampleHops`] counter.
pub trait Sampler {
    /// Draws one sample starting at `initiator`.
    ///
    /// # Errors
    ///
    /// Returns a [`WalkError`] when the underlying walk cannot proceed
    /// (e.g. the initiator is isolated, for walk-based samplers that must
    /// leave the initiator).
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng;

    /// Draws one sample through a [`RunCtx`], charging its cost to the
    /// context (and its recorder).
    ///
    /// The default implementation runs [`Sampler::sample`] on the
    /// context's topology and RNG — the identical draw sequence — and
    /// charges the hops to [`Metric::SampleHops`], records one
    /// [`Metric::SamplesDrawn`] event, and observes the per-sample cost
    /// in the [`HistogramMetric::SampleCost`] histogram.
    ///
    /// # Errors
    ///
    /// Same as [`Sampler::sample`]. Nothing is recorded for a failed
    /// draw.
    fn sample_ctx<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let topology = ctx.topology;
        let sample = self.sample(topology, initiator, &mut *ctx.rng)?;
        ctx.on_message(Metric::SampleHops, sample.hops);
        ctx.on_event(Metric::SamplesDrawn, 1);
        ctx.observe(HistogramMetric::SampleCost, sample.hops as f64);
        Ok(sample)
    }

    /// Draws up to `max_samples` samples, reporting each to `on_sample`
    /// together with its individual message cost, and returns the batch
    /// totals.
    ///
    /// `on_sample` returns [`ControlFlow::Break`] to stop early — Sample
    /// & Collide passes `u64::MAX` and breaks at the `l`-th collision.
    /// This provided loop replaces the hand-rolled sampling loops that
    /// used to live in Sample & Collide and the [`quality`] module.
    ///
    /// # Errors
    ///
    /// Propagates the first [`WalkError`] from [`Sampler::sample_ctx`];
    /// samples drawn before the failure have already been reported and
    /// recorded.
    fn sample_many<T, R, Rec, F>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
        max_samples: u64,
        mut on_sample: F,
    ) -> Result<SampleBatch, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
        F: FnMut(Sample, u64) -> ControlFlow<()>,
    {
        let mut batch = SampleBatch::default();
        for _ in 0..max_samples {
            let mark = ctx.message_mark();
            let sample = self.sample_ctx(ctx, initiator)?;
            let cost = ctx.messages_since(mark);
            batch.samples += 1;
            batch.messages += cost;
            if on_sample(sample, cost).is_break() {
                break;
            }
        }
        Ok(batch)
    }
}

/// A reference to a sampler samples like the sampler itself, so samplers
/// can be shared between estimators without cloning. All three methods
/// forward, so a sampler's `sample_ctx` override keeps recording through
/// a reference.
impl<S: Sampler + ?Sized> Sampler for &S {
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        (**self).sample(topology, initiator, rng)
    }

    fn sample_ctx<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        (**self).sample_ctx(ctx, initiator)
    }

    fn sample_many<T, R, Rec, F>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
        max_samples: u64,
        on_sample: F,
    ) -> Result<SampleBatch, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
        F: FnMut(Sample, u64) -> ControlFlow<()>,
    {
        (**self).sample_many(ctx, initiator, max_samples, on_sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use census_graph::generators;
    use census_metrics::{Metric, Registry, RunCtx};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_many_reports_per_sample_costs_and_totals() {
        let g = generators::ring(16);
        let sampler = DtrwSampler::new(7);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let start = g.nodes().next().expect("non-empty");
        let mut seen = 0u64;
        let batch = sampler
            .sample_many(&mut ctx, start, 5, |s, cost| {
                assert_eq!(s.hops, 7);
                assert_eq!(cost, 7, "per-sample cost must match the walk");
                seen += 1;
                ControlFlow::Continue(())
            })
            .expect("connected");
        assert_eq!(seen, 5);
        assert_eq!(
            batch,
            SampleBatch {
                samples: 5,
                messages: 35
            }
        );
        assert_eq!(reg.counter(Metric::SampleHops), 35);
        assert_eq!(reg.counter(Metric::SamplesDrawn), 5);
        assert_eq!(ctx.messages_total(), 35);
    }

    #[test]
    fn sample_many_breaks_early() {
        let g = generators::ring(8);
        let sampler = OracleSampler::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ctx = RunCtx::new(&g, &mut rng);
        let start = g.nodes().next().expect("non-empty");
        let batch = sampler
            .sample_many(&mut ctx, start, u64::MAX, {
                let mut left = 3u32;
                move |_s, _cost| {
                    left -= 1;
                    if left == 0 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                }
            })
            .expect("oracle cannot fail");
        assert_eq!(
            batch,
            SampleBatch {
                samples: 3,
                messages: 0
            }
        );
    }

    #[test]
    fn reference_forwarding_preserves_deep_recording() {
        // Through `&CtrwSampler` the override must still record on
        // CtrwHops, not the generic SampleHops.
        let g = generators::complete(6);
        let sampler = CtrwSampler::new(2.0);
        let by_ref: &CtrwSampler = &sampler;
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let s = by_ref
            .sample_ctx(&mut ctx, g.nodes().next().expect("non-empty"))
            .expect("cannot fail");
        assert_eq!(reg.counter(Metric::CtrwHops), s.hops);
        assert_eq!(reg.counter(Metric::SampleHops), 0);
        assert_eq!(reg.counter(Metric::SamplesDrawn), 1);
    }
}

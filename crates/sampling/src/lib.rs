//! Uniform peer sampling over overlay networks.
//!
//! The Sample & Collide estimator — and many overlay protocols beyond it
//! (neighbour selection for joining nodes, gossip target choice) — needs a
//! primitive that returns a peer chosen *uniformly at random* using only
//! local knowledge. This crate implements the paper's solution and the
//! baselines it improves on:
//!
//! - [`CtrwSampler`]: the paper's §4.1 sampler. Emulates a continuous-time
//!   random walk for a configured timer `T`; by Lemma 1 the returned peer
//!   is within total-variation distance `½√N·e^(−λ₂T)` of uniform,
//!   regardless of the degree distribution.
//! - [`DtrwSampler`]: the prior-work baseline — a discrete-time walk
//!   stopped after a fixed number of steps. Converges to the
//!   *degree-biased* distribution `d_j / Σd`, so it is inherently unsound
//!   on heterogeneous overlays (the paper's motivation for the CTRW).
//! - [`MetropolisSampler`]: a classical alternative fix — a
//!   Metropolis–Hastings walk whose acceptance ratio `min(1, d_u/d_v)`
//!   makes the uniform distribution stationary. Included as an extension
//!   baseline for the sampler-bias ablation.
//!
//! The [`quality`] module measures how close a sampler's output law is to
//! uniform (empirically, and exactly for the CTRW via uniformization).
//!
//! # Examples
//!
//! ```
//! use census_graph::generators;
//! use census_sampling::{CtrwSampler, Sampler};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let g = generators::complete(50);
//! let mut rng = SmallRng::seed_from_u64(1);
//! let initiator = g.nodes().next().expect("non-empty");
//! let sampler = CtrwSampler::new(10.0);
//! let sample = sampler.sample(&g, initiator, &mut rng)?;
//! assert!(g.is_alive(sample.node));
//! # Ok::<(), census_walk::WalkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod quality;

mod ctrw;
mod dtrw;
mod metropolis;
mod oracle;

use census_graph::{NodeId, Topology};
use census_walk::WalkError;
use rand::Rng;

pub use ctrw::CtrwSampler;
pub use dtrw::DtrwSampler;
pub use metropolis::MetropolisSampler;
pub use oracle::OracleSampler;

/// A peer returned by a sampler, with its message cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// The sampled peer.
    pub node: NodeId,
    /// Overlay messages spent obtaining it (walk hops; the reply to the
    /// initiator is not counted, matching the paper's cost accounting).
    pub hops: u64,
}

/// A peer-sampling strategy: returns one (approximately uniform) peer per
/// invocation, starting from an initiating peer.
pub trait Sampler {
    /// Draws one sample starting at `initiator`.
    ///
    /// # Errors
    ///
    /// Returns a [`WalkError`] when the underlying walk cannot proceed
    /// (e.g. the initiator is isolated, for walk-based samplers that must
    /// leave the initiator).
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng;
}

/// A reference to a sampler samples like the sampler itself, so samplers
/// can be shared between estimators without cloning.
impl<S: Sampler + ?Sized> Sampler for &S {
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        (**self).sample(topology, initiator, rng)
    }
}

//! Byzantine-hardened Metropolis–Hastings sampling.

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, Sampler};

/// A Metropolis–Hastings sampler that refuses to trust self-reported
/// degrees.
///
/// The plain [`MetropolisSampler`](crate::MetropolisSampler) accepts a
/// proposed move `u → v` with probability `min(1, d_u/d_v)`, taking both
/// degrees on faith. A Byzantine peer breaks that faith cheaply: *deflate*
/// `d_v` and the walk almost always accepts moves onto the liar (the
/// adversary becomes an absorbing attractor of the "uniform" sampler);
/// *inflate* it and honest walks bounce off, erasing the peer — and its
/// colluders — from the sample space. This sampler counters with two
/// local defences, both built from information a walk already has:
///
/// - **degree cross-audit**: before using a peer's degree, spot-check up
///   to `audit_checks` of its claimed adjacency entries against the
///   mutually-verified edge set (each neighbour of `v` knows whether `v`
///   is truly its neighbour, so a claim that disagrees with the edge set
///   fails confirmation). A claim consistent with the checks is used as
///   is; an inconsistent one is replaced by the verified adjacency count.
///   Each spot check costs one overlay message, charged to the sample.
/// - **min-degree clamp**: audited or not, no degree below `degree_floor`
///   enters the acceptance ratio, bounding how strongly any single
///   deflating liar can attract the walk even when the audit budget is
///   exhausted (`min(1, d_u/d_v) ≤ d_u/floor`).
///
/// Swallowed walks (an adversary eating the probe) are restarted from the
/// initiator up to `retries` times — liveness, shared with
/// [`MetropolisSampler::with_retries`](crate::MetropolisSampler::with_retries);
/// the *bias* resistance is the audit and the clamp.
///
/// On an honest topology every audit confirms the claim, so the chain —
/// and its RNG draw sequence — is identical to the plain Metropolis
/// sampler's; hardening then costs only the audit messages.
///
/// # Examples
///
/// ```
/// use census_sampling::HardenedMetropolisSampler;
///
/// let sampler = HardenedMetropolisSampler::new(100)
///     .with_audit_checks(3)
///     .with_degree_floor(2)
///     .with_retries(4);
/// assert_eq!(sampler.steps(), 100);
/// assert_eq!(sampler.audit_checks(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenedMetropolisSampler {
    steps: u64,
    retries: u32,
    audit_checks: u32,
    degree_floor: usize,
}

impl HardenedMetropolisSampler {
    /// Creates the hardened sampler with the default defence posture:
    /// 2 spot checks per degree query, a degree floor of 2, and 3
    /// stranded-walk restarts.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn new(steps: u64) -> Self {
        assert!(steps > 0, "a zero-step walk cannot sample");
        Self {
            steps,
            retries: 3,
            audit_checks: 2,
            degree_floor: 2,
        }
    }

    /// Sets the number of neighbours-of-neighbours spot checks spent per
    /// degree query (0 disables the audit and trusts claims, leaving
    /// only the floor).
    #[must_use]
    pub fn with_audit_checks(mut self, audit_checks: u32) -> Self {
        self.audit_checks = audit_checks;
        self
    }

    /// Sets the minimum degree admitted into the acceptance ratio.
    ///
    /// # Panics
    ///
    /// Panics if `degree_floor` is zero (a zero divisor).
    #[must_use]
    pub fn with_degree_floor(mut self, degree_floor: usize) -> Self {
        assert!(degree_floor > 0, "the degree floor must be positive");
        self.degree_floor = degree_floor;
        self
    }

    /// Sets how many times a stranded walk is restarted from the
    /// initiator before [`WalkError::Stuck`] surfaces.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The configured number of Metropolis steps.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The configured spot checks per degree query.
    #[must_use]
    pub fn audit_checks(&self) -> u32 {
        self.audit_checks
    }

    /// The configured minimum degree.
    #[must_use]
    pub fn degree_floor(&self) -> usize {
        self.degree_floor
    }

    /// The configured number of stranded-walk restarts.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The degree of `node` this sampler is willing to believe, plus the
    /// overlay messages the audit spent.
    ///
    /// With spot checks enabled, a claim that disagrees with the
    /// mutually-verified adjacency is discarded for the verified count —
    /// inflation beyond the edge set fails confirmation, deflation below
    /// it is contradicted by a confirmed extra edge. The floor applies
    /// in every case.
    fn audited_degree<T>(&self, topology: &T, node: NodeId) -> (usize, u64)
    where
        T: Topology + ?Sized,
    {
        let claimed = topology.degree_of(node);
        if self.audit_checks == 0 {
            return (claimed.max(self.degree_floor), 0);
        }
        let verified = topology.neighbors_of(node).len();
        let cost = u64::from(self.audit_checks).min(verified as u64);
        let believed = if claimed == verified {
            claimed
        } else {
            verified
        };
        (believed.max(self.degree_floor), cost)
    }

    /// The walk shared by both trait entry points: final node, accepted
    /// moves, rejected proposals, and audit messages, totalled across
    /// restarts.
    fn walk<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<(NodeId, u64, u64, u64), WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        if topology.neighbors_of(initiator).is_empty() {
            return Err(WalkError::Stuck(initiator));
        }
        let mut hops = 0u64;
        let mut rejections = 0u64;
        let mut audits = 0u64;
        'attempt: for _ in 0..=self.retries {
            let mut current = initiator;
            let (mut d_cur, cost) = self.audited_degree(topology, current);
            audits += cost;
            for _ in 0..self.steps {
                let Some(v) = topology.neighbor_of(current, rng) else {
                    continue 'attempt;
                };
                let (d_v, cost) = self.audited_degree(topology, v);
                audits += cost;
                // Accept with probability min(1, d_cur / d_v), on the
                // audited-and-clamped degrees.
                if d_v <= d_cur || rng.random::<f64>() * d_v as f64 <= d_cur as f64 {
                    current = v;
                    d_cur = d_v;
                    hops += 1;
                } else {
                    rejections += 1;
                }
            }
            return Ok((current, hops, rejections, audits));
        }
        Err(WalkError::Stuck(initiator))
    }
}

impl Sampler for HardenedMetropolisSampler {
    /// The reported [`Sample::hops`] is the full message bill: accepted
    /// moves plus audit messages.
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let (node, hops, _rejections, audits) = self.walk(topology, initiator, rng)?;
        Ok(Sample {
            node,
            hops: hops + audits,
        })
    }

    /// Records accepted moves *and* audit messages on
    /// [`Metric::MetropolisHops`] (both are overlay messages of the
    /// Metropolis machinery) and the rejected proposals on
    /// [`Metric::MetropolisRejections`].
    fn sample_ctx<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let topology = ctx.topology;
        let (node, hops, rejections, audits) = self.walk(topology, initiator, &mut *ctx.rng)?;
        ctx.on_message(Metric::MetropolisHops, hops + audits);
        ctx.on_event(Metric::MetropolisRejections, rejections);
        ctx.on_event(Metric::SamplesDrawn, 1);
        ctx.observe(HistogramMetric::SampleCost, (hops + audits) as f64);
        Ok(Sample {
            node,
            hops: hops + audits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quality, MetropolisSampler};
    use census_graph::{generators, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn near_uniform_on_star() {
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = HardenedMetropolisSampler::new(200).with_degree_floor(1);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 30_000, &mut rng);
        assert!(tv < 0.04, "hardened Metropolis TV {tv} too large");
    }

    #[test]
    fn matches_plain_metropolis_on_honest_topologies() {
        // Every audit confirms the claim, the floor of 1 never binds:
        // the chain must be draw-for-draw identical to the naive sampler,
        // differing only in the audit messages on the bill.
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(150, 3, &mut rng);
        let naive = MetropolisSampler::new(120);
        let hardened = HardenedMetropolisSampler::new(120)
            .with_degree_floor(1)
            .with_audit_checks(2);
        let start = g.nodes().next().expect("non-empty");
        for i in 0..50u64 {
            let mut a = SmallRng::seed_from_u64(10 + i);
            let mut b = SmallRng::seed_from_u64(10 + i);
            let plain = naive.sample(&g, start, &mut a).expect("connected");
            let hard = hardened.sample(&g, start, &mut b).expect("connected");
            assert_eq!(plain.node, hard.node, "walk {i} diverged");
            assert!(hard.hops >= plain.hops, "audits only add messages");
        }
    }

    #[test]
    fn floor_of_one_without_audit_is_plain_metropolis() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::balanced(200, 6, &mut rng);
        let naive = MetropolisSampler::new(80);
        let hardened = HardenedMetropolisSampler::new(80)
            .with_degree_floor(1)
            .with_audit_checks(0);
        let start = g.nodes().next().expect("non-empty");
        for i in 0..30u64 {
            let mut a = SmallRng::seed_from_u64(i);
            let mut b = SmallRng::seed_from_u64(i);
            assert_eq!(
                naive.sample(&g, start, &mut a).expect("connected"),
                hardened.sample(&g, start, &mut b).expect("connected"),
                "audit-free hardened sampler must equal the naive one bill included"
            );
        }
    }

    #[test]
    fn audit_discards_degree_lies() {
        /// A topology claiming every degree is 1 while adjacency says
        /// otherwise — the deflation attack in its purest form.
        struct Deflating(Graph);
        impl Topology for Deflating {
            fn peer_count(&self) -> usize {
                self.0.peer_count()
            }
            fn contains(&self, node: NodeId) -> bool {
                self.0.contains(node)
            }
            fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
                self.0.neighbors_of(node)
            }
            fn degree_of(&self, _node: NodeId) -> usize {
                1
            }
            fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
                self.0.any_peer(rng)
            }
        }
        let g = generators::star(9); // 9 peers: hub degree 8, leaves degree 1
        let hub = g.nodes().next().expect("non-empty");
        let lying = Deflating(g);
        let audited = HardenedMetropolisSampler::new(10).with_degree_floor(1);
        let (d, cost) = audited.audited_degree(&lying, hub);
        assert_eq!(d, 8, "audit must recover the verified degree");
        assert_eq!(cost, 2, "two spot checks were spent");
        let trusting = audited.with_audit_checks(0);
        assert_eq!(
            trusting.audited_degree(&lying, hub),
            (1, 0),
            "without the audit the lie stands (modulo the floor)"
        );
    }

    #[test]
    fn floor_clamps_deflation_when_audit_is_off() {
        let g = generators::star(9);
        let hub = g.nodes().next().expect("non-empty");
        let leaf = g.nodes().nth(1).expect("a leaf");
        let floored = HardenedMetropolisSampler::new(10)
            .with_audit_checks(0)
            .with_degree_floor(3);
        assert_eq!(floored.audited_degree(&g, hub), (8, 0));
        assert_eq!(
            floored.audited_degree(&g, leaf),
            (3, 0),
            "the floor binds below it"
        );
    }

    #[test]
    fn isolated_initiator_is_stuck() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(
            HardenedMetropolisSampler::new(5).sample(&g, a, &mut rng),
            Err(WalkError::Stuck(a))
        );
    }

    #[test]
    fn ctx_bill_includes_audit_messages() {
        use census_metrics::{Metric, Registry, RunCtx};
        let g = generators::star(10);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let sampler = HardenedMetropolisSampler::new(50).with_degree_floor(1);
        let s = sampler
            .sample_ctx(&mut ctx, g.nodes().next().expect("non-empty"))
            .expect("walk completes");
        assert_eq!(reg.counter(Metric::MetropolisHops), s.hops);
        assert!(
            s.hops > 50 - reg.counter(Metric::MetropolisRejections),
            "the bill must exceed the accepted moves by the audit cost"
        );
        assert_eq!(ctx.messages_total(), s.hops);
    }
}

//! Metropolis–Hastings sampler (extension baseline).

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, Sampler};

/// A Metropolis–Hastings random walk sampler.
///
/// At node `u` the walk proposes a uniform neighbour `v` and accepts the
/// move with probability `min(1, d_u / d_v)`; otherwise it stays at `u`
/// for that step. The resulting chain has the *uniform* distribution as
/// its stationary law on any connected graph, making it the classical
/// discrete-time fix for degree bias and a natural comparison point for
/// the paper's CTRW sampler: both are unbiased in the limit, but their
/// mixing behaviour and per-sample message costs differ (self-loop steps
/// cost no message, yet also make no progress).
///
/// # Examples
///
/// ```
/// use census_sampling::MetropolisSampler;
///
/// let sampler = MetropolisSampler::new(100);
/// assert_eq!(sampler.steps(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetropolisSampler {
    steps: u64,
    retries: u32,
}

impl MetropolisSampler {
    /// Creates a sampler running `steps` Metropolis steps (accepted or
    /// not) before reporting the current node, with no walk retries.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn new(steps: u64) -> Self {
        assert!(steps > 0, "a zero-step walk cannot sample");
        Self { steps, retries: 0 }
    }

    /// Restarts a walk stranded mid-flight (a hop that could not be
    /// delivered — message loss, or an adversarial peer swallowing the
    /// probe) from the initiator, up to `retries` times, before
    /// surfacing [`WalkError::Stuck`]. Messages spent on stranded
    /// attempts stay on the bill. On a fault-free topology this setting
    /// is inert: a walk only strands when the environment drops it.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The configured number of Metropolis steps.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The configured number of stranded-walk restarts.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The walk itself, shared by both trait entry points: returns the
    /// final node, the accepted moves (= messages), and the rejected
    /// proposals, both totalled across restarts.
    fn walk<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<(NodeId, u64, u64), WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        if topology.degree_of(initiator) == 0 {
            return Err(WalkError::Stuck(initiator));
        }
        let mut hops = 0u64;
        let mut rejections = 0u64;
        'attempt: for _ in 0..=self.retries {
            let mut current = initiator;
            for _ in 0..self.steps {
                let d_u = topology.degree_of(current);
                // An undeliverable hop (dropped or swallowed probe)
                // strands the walk; restart it from the initiator if the
                // retry budget allows.
                let Some(v) = topology.neighbor_of(current, rng) else {
                    continue 'attempt;
                };
                let d_v = topology.degree_of(v);
                // Accept with probability min(1, d_u / d_v).
                if d_v <= d_u || rng.random::<f64>() * d_v as f64 <= d_u as f64 {
                    current = v;
                    hops += 1;
                } else {
                    rejections += 1;
                }
            }
            return Ok((current, hops, rejections));
        }
        Err(WalkError::Stuck(initiator))
    }
}

impl Sampler for MetropolisSampler {
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let (node, hops, _rejections) = self.walk(topology, initiator, rng)?;
        Ok(Sample { node, hops })
    }

    /// Records the accepted moves on [`Metric::MetropolisHops`] (rejected
    /// proposals cost no message) and the rejections on
    /// [`Metric::MetropolisRejections`].
    fn sample_ctx<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let topology = ctx.topology;
        let (node, hops, rejections) = self.walk(topology, initiator, &mut *ctx.rng)?;
        ctx.on_message(Metric::MetropolisHops, hops);
        ctx.on_event(Metric::MetropolisRejections, rejections);
        ctx.on_event(Metric::SamplesDrawn, 1);
        ctx.observe(HistogramMetric::SampleCost, hops as f64);
        Ok(Sample { node, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use census_graph::{generators, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn near_uniform_on_star() {
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = MetropolisSampler::new(200);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 30_000, &mut rng);
        assert!(tv < 0.04, "Metropolis TV {tv} too large on the star");
    }

    #[test]
    fn near_uniform_on_scale_free_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let sampler = MetropolisSampler::new(400);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 40_000, &mut rng);
        assert!(tv < 0.08, "Metropolis TV {tv} too large on scale-free");
    }

    #[test]
    fn hops_never_exceed_steps() {
        let g = generators::star(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let sampler = MetropolisSampler::new(50);
        for _ in 0..100 {
            let s = sampler
                .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
                .expect("walk completes");
            assert!(s.hops <= 50);
        }
    }

    #[test]
    fn rejections_occur_on_irregular_graphs() {
        // Leaf -> hub proposals are always accepted, hub -> leaf proposals
        // accepted with probability (n-1)^-1... on a star most steps from
        // the hub are rejected, so hops < steps strictly, eventually.
        let g = generators::star(10);
        let mut rng = SmallRng::seed_from_u64(4);
        let sampler = MetropolisSampler::new(100);
        let s = sampler
            .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
            .expect("walk completes");
        assert!(s.hops < 100, "some hub->leaf proposals must be rejected");
    }

    #[test]
    fn ctx_records_accepted_hops_and_rejections() {
        use census_metrics::{Metric, Registry, RunCtx};
        let g = generators::star(10);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let sampler = MetropolisSampler::new(100);
        let s = sampler
            .sample_ctx(&mut ctx, g.nodes().next().expect("non-empty"))
            .expect("walk completes");
        assert_eq!(reg.counter(Metric::MetropolisHops), s.hops);
        assert_eq!(
            reg.counter(Metric::MetropolisHops) + reg.counter(Metric::MetropolisRejections),
            100,
            "every step either hops or rejects"
        );
        assert_eq!(
            reg.counter(Metric::SampleHops),
            0,
            "no generic double count"
        );
        assert_eq!(ctx.messages_total(), s.hops);
    }

    #[test]
    fn retries_restart_stranded_walks_from_the_initiator() {
        use std::cell::Cell;
        /// Swallows the next `failures` hop deliveries, then is honest.
        struct Flaky<'a> {
            inner: &'a Graph,
            failures: Cell<u32>,
        }
        impl Topology for Flaky<'_> {
            fn peer_count(&self) -> usize {
                self.inner.peer_count()
            }
            fn contains(&self, node: NodeId) -> bool {
                self.inner.contains(node)
            }
            fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
                self.inner.neighbors_of(node)
            }
            fn any_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
                self.inner.any_peer(rng)
            }
            fn neighbor_of<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
                let hop = self.inner.neighbor_of(node, rng)?;
                if self.failures.get() > 0 {
                    self.failures.set(self.failures.get() - 1);
                    return None;
                }
                Some(hop)
            }
        }
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::balanced(60, 6, &mut rng);
        let start = g.nodes().next().expect("non-empty");
        // Without a retry budget the first swallowed hop strands the walk.
        let flaky = Flaky {
            inner: &g,
            failures: Cell::new(3),
        };
        let mut a = SmallRng::seed_from_u64(7);
        assert_eq!(
            MetropolisSampler::new(40).sample(&flaky, start, &mut a),
            Err(WalkError::Stuck(start))
        );
        // A budget of 3 absorbs the three swallowed hops: the fourth
        // attempt runs on an honest transport and lands on a live peer.
        let flaky = Flaky {
            inner: &g,
            failures: Cell::new(3),
        };
        let mut b = SmallRng::seed_from_u64(7);
        let s = MetropolisSampler::new(40)
            .with_retries(3)
            .sample(&flaky, start, &mut b)
            .expect("restarts absorb the swallowed hops");
        assert!(g.contains(s.node));
        // On a fault-free topology the setting is inert.
        let mut c = SmallRng::seed_from_u64(8);
        let mut d = SmallRng::seed_from_u64(8);
        assert_eq!(
            MetropolisSampler::new(40).sample(&g, start, &mut c),
            MetropolisSampler::new(40)
                .with_retries(5)
                .sample(&g, start, &mut d),
        );
    }

    #[test]
    fn isolated_initiator_is_stuck() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(
            MetropolisSampler::new(5).sample(&g, a, &mut rng),
            Err(WalkError::Stuck(a))
        );
    }
}

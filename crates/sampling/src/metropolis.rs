//! Metropolis–Hastings sampler (extension baseline).

use census_graph::{NodeId, Topology};
use census_metrics::{HistogramMetric, Metric, Recorder, RunCtx};
use census_walk::WalkError;
use rand::Rng;

use crate::{Sample, Sampler};

/// A Metropolis–Hastings random walk sampler.
///
/// At node `u` the walk proposes a uniform neighbour `v` and accepts the
/// move with probability `min(1, d_u / d_v)`; otherwise it stays at `u`
/// for that step. The resulting chain has the *uniform* distribution as
/// its stationary law on any connected graph, making it the classical
/// discrete-time fix for degree bias and a natural comparison point for
/// the paper's CTRW sampler: both are unbiased in the limit, but their
/// mixing behaviour and per-sample message costs differ (self-loop steps
/// cost no message, yet also make no progress).
///
/// # Examples
///
/// ```
/// use census_sampling::MetropolisSampler;
///
/// let sampler = MetropolisSampler::new(100);
/// assert_eq!(sampler.steps(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetropolisSampler {
    steps: u64,
}

impl MetropolisSampler {
    /// Creates a sampler running `steps` Metropolis steps (accepted or
    /// not) before reporting the current node.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    #[must_use]
    pub fn new(steps: u64) -> Self {
        assert!(steps > 0, "a zero-step walk cannot sample");
        Self { steps }
    }

    /// The configured number of Metropolis steps.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The walk itself, shared by both trait entry points: returns the
    /// final node, the accepted moves (= messages), and the rejected
    /// proposals.
    fn walk<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<(NodeId, u64, u64), WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        if topology.degree_of(initiator) == 0 {
            return Err(WalkError::Stuck(initiator));
        }
        let mut current = initiator;
        let mut hops = 0u64;
        let mut rejections = 0u64;
        for _ in 0..self.steps {
            let d_u = topology.degree_of(current);
            let v = topology
                .neighbor_of(current, rng)
                .expect("positive degree implies a neighbour");
            let d_v = topology.degree_of(v);
            // Accept with probability min(1, d_u / d_v).
            if d_v <= d_u || rng.random::<f64>() * d_v as f64 <= d_u as f64 {
                current = v;
                hops += 1;
            } else {
                rejections += 1;
            }
        }
        Ok((current, hops, rejections))
    }
}

impl Sampler for MetropolisSampler {
    fn sample<T, R>(
        &self,
        topology: &T,
        initiator: NodeId,
        rng: &mut R,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
    {
        let (node, hops, _rejections) = self.walk(topology, initiator, rng)?;
        Ok(Sample { node, hops })
    }

    /// Records the accepted moves on [`Metric::MetropolisHops`] (rejected
    /// proposals cost no message) and the rejections on
    /// [`Metric::MetropolisRejections`].
    fn sample_ctx<T, R, Rec>(
        &self,
        ctx: &mut RunCtx<'_, T, R, Rec>,
        initiator: NodeId,
    ) -> Result<Sample, WalkError>
    where
        T: Topology + ?Sized,
        R: Rng,
        Rec: Recorder + ?Sized,
    {
        let topology = ctx.topology;
        let (node, hops, rejections) = self.walk(topology, initiator, &mut *ctx.rng)?;
        ctx.on_message(Metric::MetropolisHops, hops);
        ctx.on_event(Metric::MetropolisRejections, rejections);
        ctx.on_event(Metric::SamplesDrawn, 1);
        ctx.observe(HistogramMetric::SampleCost, hops as f64);
        Ok(Sample { node, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality;
    use census_graph::{generators, Graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn near_uniform_on_star() {
        let g = generators::star(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let sampler = MetropolisSampler::new(200);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 30_000, &mut rng);
        assert!(tv < 0.04, "Metropolis TV {tv} too large on the star");
    }

    #[test]
    fn near_uniform_on_scale_free_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let sampler = MetropolisSampler::new(400);
        let tv = quality::empirical_tv_to_uniform(&sampler, &g, 40_000, &mut rng);
        assert!(tv < 0.08, "Metropolis TV {tv} too large on scale-free");
    }

    #[test]
    fn hops_never_exceed_steps() {
        let g = generators::star(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let sampler = MetropolisSampler::new(50);
        for _ in 0..100 {
            let s = sampler
                .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
                .expect("walk completes");
            assert!(s.hops <= 50);
        }
    }

    #[test]
    fn rejections_occur_on_irregular_graphs() {
        // Leaf -> hub proposals are always accepted, hub -> leaf proposals
        // accepted with probability (n-1)^-1... on a star most steps from
        // the hub are rejected, so hops < steps strictly, eventually.
        let g = generators::star(10);
        let mut rng = SmallRng::seed_from_u64(4);
        let sampler = MetropolisSampler::new(100);
        let s = sampler
            .sample(&g, g.nodes().next().expect("non-empty"), &mut rng)
            .expect("walk completes");
        assert!(s.hops < 100, "some hub->leaf proposals must be rejected");
    }

    #[test]
    fn ctx_records_accepted_hops_and_rejections() {
        use census_metrics::{Metric, Registry, RunCtx};
        let g = generators::star(10);
        let reg = Registry::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ctx = RunCtx::with_recorder(&g, &mut rng, &reg);
        let sampler = MetropolisSampler::new(100);
        let s = sampler
            .sample_ctx(&mut ctx, g.nodes().next().expect("non-empty"))
            .expect("walk completes");
        assert_eq!(reg.counter(Metric::MetropolisHops), s.hops);
        assert_eq!(
            reg.counter(Metric::MetropolisHops) + reg.counter(Metric::MetropolisRejections),
            100,
            "every step either hops or rejects"
        );
        assert_eq!(
            reg.counter(Metric::SampleHops),
            0,
            "no generic double count"
        );
        assert_eq!(ctx.messages_total(), s.hops);
    }

    #[test]
    fn isolated_initiator_is_stuck() {
        let mut g = Graph::new();
        let a = g.add_node();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(
            MetropolisSampler::new(5).sample(&g, a, &mut rng),
            Err(WalkError::Stuck(a))
        );
    }
}
